"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``schedule`` - schedule one workbench loop, a real source loop
  (``--source``) or a built-in demo kernel on a named configuration and
  print the kernel (optionally the full generated code);
* ``simulate`` - schedule a loop, *execute* its generated code on the
  cycle-accurate simulator (:mod:`repro.sim`), check it bit-for-bit
  against the scalar reference interpreter, and compare the measured
  useful/stall cycles with the analytic :mod:`repro.memsim` prediction;
* ``analyze``  - schedule a workbench subset, emit its code and run the
  *static certifier* (:mod:`repro.analysis`) on every pipeline: the
  exit status is nonzero if any loop's code is rejected (or cannot be
  emitted), so the command doubles as a CI gate;
* ``compare``  - run MIRS-C and the non-iterative baseline [31] over a
  workbench subset on one configuration and print the comparison;
* ``frontend`` - the source-loop frontend (:mod:`repro.frontend`):
  ``frontend show`` prints the analyzed IR of one kernel (or the whole
  corpus table), ``frontend run`` schedules, certifies and
  differentially validates kernels end to end — exit status is nonzero
  on any failure, so it doubles as a CI gate;
* ``suite``    - print structural statistics of the synthetic workbench;
* ``technology`` - print the Figure 2 technology table;
* ``cache``    - inspect or clear the on-disk schedule-result cache;
* ``trace``    - inspect structured traces recorded with ``--trace``
  (or ``REPRO_TRACE``): ``trace summary PATH`` validates the JSONL
  against the committed schema and prints per-phase and per-attempt
  breakdowns.

``compare`` runs through the suite-execution engine: ``--jobs N`` shards
the workbench over N worker processes and results are memoized in the
cache (``.repro-cache/`` or ``$REPRO_CACHE_DIR``) unless ``--no-cache``
is given.

Examples::

    python -m repro schedule --config "4-(GP2M1-REG16)" --loop 31 --code
    python -m repro schedule --source mykernels.py --kernel saxpy --code
    python -m repro frontend show ewma2
    python -m repro frontend run --config "1-(GP8M4-REG64)" saxpy prefix
    python -m repro analyze --config "4-(GP2M1-REG16)" --loops 16
    python -m repro simulate --config "4-(GP2M1-REG16)" --loop 12 --iterations 100
    python -m repro compare --config "2-(GP4M2-REG32)" --loops 12 --jobs 4
    python -m repro technology
    python -m repro cache --clear
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    LoopBuilder,
    generate_code,
    parse_config,
)
from repro.core.request import ScheduleRequest, SessionConfig
from repro.errors import FrontendError
from repro.core.search import POLICIES
from repro.eval.experiments import figure2_rows
from repro.eval.pretty import format_kernel
from repro.eval.reporting import render_table
from repro.eval.runner import schedule_suite
from repro.exec import ResultCache
from repro.memsim.stall import MemoryModel
from repro.sim import run_differential
from repro.workloads.perfect import (
    SUITE_SIZE,
    build_loop,
    cached_suite,
    suite_statistics,
)


def workbench_index(text: str) -> int:
    """Argparse type for ``--loop``: a valid workbench loop index."""
    try:
        index = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid loop index {text!r} (expected an integer)"
        ) from None
    if not 0 <= index < SUITE_SIZE:
        raise argparse.ArgumentTypeError(
            f"loop index {index} is out of range; the workbench has "
            f"{SUITE_SIZE} loops (valid indices: 0..{SUITE_SIZE - 1})"
        )
    return index


def workbench_count(text: str) -> int:
    """Argparse type for ``--loops``: a valid workbench subset size."""
    try:
        count = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid loop count {text!r} (expected an integer)"
        ) from None
    if not 1 <= count <= SUITE_SIZE:
        raise argparse.ArgumentTypeError(
            f"loop count {count} is out of range; pick between 1 and "
            f"{SUITE_SIZE} workbench loops"
        )
    return count


def positive_int(text: str) -> int:
    """Argparse type for counts that must be at least 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid count {text!r} (expected an integer)"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"count must be at least 1, got {value}"
        )
    return value


def _request_from(args: argparse.Namespace) -> ScheduleRequest:
    """The one CLI→request resolution point: every scheduling command
    builds its :class:`ScheduleRequest` here, so the CLI and the Python
    API share identical semantics (and cache keys)."""
    trace = None
    if getattr(args, "trace", None):
        from repro.obs import RecordingTracer

        trace = RecordingTracer()
    return ScheduleRequest(
        scheduler=getattr(args, "scheduler", "mirsc"),
        search=args.ii_search,
        speculation=args.speculation,
        trace=trace,
    )


def _finish_trace(args: argparse.Namespace, request: ScheduleRequest) -> None:
    """Write the command's trace (JSONL + Chrome sibling) if one was on."""
    path = getattr(args, "trace", None)
    if not path or not getattr(request.trace, "enabled", False):
        return
    from repro.obs.export import chrome_path_for, write_chrome, write_jsonl

    write_jsonl(request.trace, path)
    chrome = write_chrome(request.trace, chrome_path_for(path))
    print(f"trace written: {path} (+ {chrome})", file=sys.stderr)


def _demo_graph():
    b = LoopBuilder("daxpy", trip_count=1000)
    x = b.load(array=0)
    y = b.load(array=1)
    a = b.invariant("a")
    b.store(b.add(b.mul(x, a), y), array=1)
    return b.build()


def _resolve_source(source: str, kernel: str | None):
    """Lower ``--source`` (a path or a corpus kernel name) to one kernel."""
    from repro.frontend import lower_source
    from repro.frontend.corpus import CORPUS_KERNELS, corpus_path

    path = corpus_path(source) if source in CORPUS_KERNELS else source
    kernels = lower_source(path, kernel=kernel)
    if len(kernels) > 1:
        names = ", ".join(k.name for k in kernels)
        raise FrontendError(
            f"{source} defines {len(kernels)} kernels ({names}); "
            "pick one with --kernel"
        )
    return kernels[0]


def _loop_graph(args: argparse.Namespace):
    """Graph selected by ``--source`` / ``--loop`` (demo DAXPY otherwise)."""
    if args.source is not None:
        if args.loop is not None:
            raise FrontendError("--source and --loop are mutually exclusive")
        return _resolve_source(args.source, args.kernel).graph
    if args.loop is None:
        return _demo_graph()
    return build_loop(args.loop).graph


def _cmd_schedule(args: argparse.Namespace) -> int:
    machine = parse_config(
        args.config, move_latency=args.move_latency, buses=args.buses
    )
    try:
        graph = _loop_graph(args)
    except FrontendError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    request = _request_from(args)
    result = request.make_scheduler(machine).schedule(graph)
    print(format_kernel(result))
    print()
    print(result.summary())
    if result.oracle is not None:
        oracle = result.oracle
        print(
            f"oracle: {oracle['status']} (engine={oracle['engine']}, "
            f"proven lower bound II={oracle['proven_lower_ii']}, "
            f"{len(oracle['certificates'])} certificates)"
        )
    if args.code:
        print()
        print(generate_code(result).render())
    _finish_trace(args, request)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    machine = parse_config(
        args.config, move_latency=args.move_latency, buses=args.buses
    )
    try:
        graph = _loop_graph(args)
    except FrontendError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    request = _request_from(args)
    result = request.make_scheduler(machine).schedule(graph)
    # None: the environment decides (REPRO_CACHE_DIR opts in, as for
    # plain library calls elsewhere).
    report = run_differential(result, args.iterations, cache=None)
    sim = report.simulation

    analytic = MemoryModel().evaluate(result, iterations=sim.iterations)
    useful_ok = sim.useful_cycles == round(analytic.useful_cycles)
    rows = [
        ["iterations (requested -> run)",
         f"{sim.requested_iterations} -> {sim.iterations}"],
        ["II / stages / MVE", f"{sim.ii} / {sim.stage_count} / {sim.mve_factor}"],
    ]
    if sim.surplus_iterations:
        rows.append([
            "surplus source iterations",
            f"{sim.surplus_iterations} (unroll x{sim.unroll_factor} does "
            "not divide the source trip count)",
        ])
    rows += [
        ["useful cycles (measured)", sim.useful_cycles],
        ["useful cycles (analytic)", round(analytic.useful_cycles)],
        ["stall cycles (measured)", sim.stall_cycles],
        ["stall cycles (analytic)", round(analytic.stall_cycles, 1)],
        ["instructions / IPC", f"{sim.instructions} / {sim.ipc:.2f}"],
        ["cache hits / misses", f"{sim.cache_hits} / {sim.cache_misses}"],
        ["bus occupancy (moves/cycle)", round(sim.bus_occupancy, 3)],
    ]
    note = (
        f"reference interpreter: {'MATCH' if report.match else 'MISMATCH'}; "
        f"analytic useful cycles: "
        f"{'match' if useful_ok else 'MISMATCH'}"
    )
    print(
        render_table(
            f"Simulated {result.loop} on {machine.name} "
            f"(II={result.ii}, MII={result.mii})",
            ["metric", "value"],
            rows,
            note,
        )
    )
    if not report.match:
        print()
        print(report.summary())
    _finish_trace(args, request)
    return 0 if report.match and useful_ok else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import certify_code
    from repro.errors import CodegenError

    machine = parse_config(
        args.config, move_latency=args.move_latency, buses=args.buses
    )
    loops = cached_suite(args.loops)
    session = SessionConfig(jobs=args.jobs, cache=not args.no_cache)
    request = _request_from(args)
    run = schedule_suite(machine, loops, request, session=session)

    rows = []
    rejected: list[str] = []
    for loop, result in zip(loops, run.results, strict=True):
        name = loop.graph.name
        if not result.converged:
            rows.append([name, len(loop.graph), "n/a", "-", "-", "-", "-",
                         "not converged"])
            rejected.append(f"{name}: schedule did not converge")
            continue
        try:
            code = generate_code(result)
        except CodegenError as error:
            rows.append([name, len(loop.graph), result.ii, "-", "-", "-",
                         "-", error.kind])
            rejected.append(f"{name}: cannot emit code ({error.kind})")
            continue
        report = certify_code(code, result)
        verdict = "ok" if report.ok else f"{len(report.violations)} violations"
        rows.append([
            name,
            len(loop.graph),
            report.ii,
            report.stage_count,
            report.mve_factor,
            report.bundles_checked,
            report.reads_checked,
            verdict,
        ])
        if not report.ok:
            rejected.append(report.summary())
    print(
        render_table(
            f"Static certification on {machine.name} ({len(loops)} loops)",
            ["loop", "ops", "II", "SC", "MVE", "bundles", "reads", "verdict"],
            rows,
            f"{len(loops) - len(rejected)}/{len(loops)} pipelines certified",
        )
    )
    for entry in rejected:
        print()
        print(entry)
    _finish_trace(args, request)
    return 1 if rejected else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    machine = parse_config(
        args.config, move_latency=args.move_latency, buses=args.buses
    )
    loops = cached_suite(args.loops)
    session = SessionConfig(jobs=args.jobs, cache=not args.no_cache)
    request = _request_from(args)
    ours_run = schedule_suite(machine, loops, request, session=session)
    base_run = schedule_suite(machine, loops, "baseline", session=session)
    rows = []
    for loop, ours, base in zip(loops, ours_run.results, base_run.results, strict=True):
        rows.append(
            [
                loop.graph.name,
                len(loop.graph),
                ours.ii if ours.converged else "n/a",
                base.ii if base.converged else "n/a",
                ours.memory_traffic,
                ours.move_operations,
                ours.spill_operations,
            ]
        )
    print(
        render_table(
            f"MIRS-C vs [31] on {machine.name} ({len(loops)} loops)",
            ["loop", "ops", "II MIRS-C", "II [31]", "trf", "moves", "spills"],
            rows,
        )
    )
    executor = session.make_executor()
    stats = executor.stats
    print(
        f"[exec] jobs={executor.jobs} scheduled={stats.scheduled} "
        f"cache_hits={stats.cache_hits} wall={stats.wall_seconds:.2f}s"
    )
    _finish_trace(args, request)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.dir) if args.dir else ResultCache()
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
        return 0
    stats = cache.stats()
    rows = [
        ["directory", stats.directory],
        ["entries", stats.entries],
        ["size (KiB)", round(stats.total_bytes / 1024, 1)],
    ]
    print(render_table("Schedule-result cache", ["key", "value"], rows))
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    from repro.obs.export import validate_trace_file
    from repro.obs.summary import summarize_file

    problems = validate_trace_file(args.path)
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1
    print(summarize_file(args.path).render())
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    loops = cached_suite(args.loops)
    stats = suite_statistics(list(loops))
    rows = [[key, value] for key, value in sorted(stats.items())]
    print(render_table("Workbench statistics", ["metric", "value"], rows))
    return 0


def _cmd_technology(args: argparse.Namespace) -> int:
    headers, rows, note = figure2_rows()
    print(render_table("Technology model (Figure 2)", headers, rows, note))
    return 0


def _cmd_frontend_show(args: argparse.Namespace) -> int:
    from repro.frontend import available_parsers
    from repro.frontend.corpus import CORPUS_KERNELS, load_kernel
    from repro.graph.mii import compute_mii, resource_mii
    from repro.graph.recurrences import recurrence_mii

    machine = parse_config(args.config)
    if args.source is None:
        parsers = ", ".join(
            f"{name} ({'available' if ok else 'unavailable'})"
            for name, ok in sorted(available_parsers().items())
        )
        rows = []
        for name in CORPUS_KERNELS:
            lowered = load_kernel(name)
            graph = lowered.graph
            rows.append(
                [
                    name,
                    len(graph),
                    len(lowered.arrays),
                    len(lowered.scalars),
                    len(lowered.invariants),
                    len(lowered.mem_deps),
                    resource_mii(graph, machine),
                    recurrence_mii(graph, machine),
                    compute_mii(graph, machine),
                ]
            )
        print(
            render_table(
                f"Frontend corpus on {machine.name}",
                ["kernel", "ops", "arrays", "scalars", "invs", "mem deps",
                 "ResMII", "RecMII", "MII"],
                rows,
                f"parsers: {parsers}",
            )
        )
        return 0

    try:
        lowered = _resolve_source(args.source, args.kernel)
    except FrontendError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    kernel = lowered.kernel
    loop = kernel.loop
    graph = lowered.graph
    stop = loop.symbolic_bound or loop.start + loop.step * loop.trip_count
    print(f"kernel {lowered.name} ({kernel.source})")
    print(
        f"loop:  for {loop.var} in range({loop.start}, {stop}"
        + (f", {loop.step}" if loop.step != 1 else "")
        + f")  [trip count {graph.trip_count}]"
    )
    roles = lowered.roles
    print(f"names: induction {roles.induction!r}")
    for label, names in (
        ("arrays", roles.arrays),
        ("scalars", roles.loop_scalars),
        ("invariants", roles.invariants),
    ):
        if names:
            print(f"       {label}: {', '.join(names)}")
    for name, binding in sorted(lowered.scalars.items()):
        if binding.node_id is None:
            print(f"state: {name} stays live-in (invariant)")
        else:
            print(
                f"state: {name} <- node {binding.node_id} "
                f"({binding.shift} iteration(s) back)"
            )
    for dep in lowered.mem_deps:
        print(f"mem:   {dep.describe()}")
    res = resource_mii(graph, machine)
    rec = recurrence_mii(graph, machine)
    print(
        f"graph: {len(graph)} ops, {len(lowered.invariants)} invariant(s); "
        f"MII on {machine.name}: max(ResMII {res}, RecMII {rec}) = "
        f"{compute_mii(graph, machine)}"
    )
    return 0


def _cmd_frontend_run(args: argparse.Namespace) -> int:
    from repro.analysis import certify_code
    from repro.errors import CodegenError
    from repro.frontend.corpus import CORPUS_KERNELS
    from repro.frontend.differential import run_source_differential

    machine = parse_config(
        args.config, move_latency=args.move_latency, buses=args.buses
    )
    names = list(args.kernels) or list(CORPUS_KERNELS)
    try:
        lowered = [_resolve_source(name, None) for name in names]
    except FrontendError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    session = SessionConfig(jobs=args.jobs, cache=not args.no_cache)
    request = _request_from(args)
    run = schedule_suite(machine, lowered, request, session=session)
    executor = session.make_executor()
    cache = executor.cache if executor.cache is not None else False

    rows = []
    failures: list[str] = []
    ok_count = 0
    for kernel, result in zip(lowered, run.results, strict=True):
        if not result.converged:
            rows.append([kernel.name, len(kernel.graph), "-", "-", "-", "-"])
            failures.append(f"{kernel.name}: schedule did not converge")
            continue
        try:
            code = generate_code(result)
        except CodegenError as error:
            rows.append(
                [kernel.name, len(kernel.graph), result.mii, result.ii,
                 error.kind, "-"]
            )
            failures.append(f"{kernel.name}: cannot emit code ({error.kind})")
            continue
        cert = certify_code(code, result)
        diff = run_source_differential(
            kernel, result, args.iterations, cache=cache
        )
        if diff.match:
            verdict = "match" if diff.source_match is not None else (
                "match (link 3 skipped)"
            )
        else:
            verdict = "MISMATCH"
        rows.append(
            [
                kernel.name,
                len(kernel.graph),
                result.mii,
                result.ii,
                "ok" if cert.ok else f"{len(cert.violations)} violations",
                verdict,
            ]
        )
        if not cert.ok:
            failures.append(cert.summary())
        if not diff.match:
            failures.append(diff.summary())
        if cert.ok and diff.match:
            ok_count += 1
    print(
        render_table(
            f"Frontend differential on {machine.name} "
            f"({args.iterations} iterations)",
            ["kernel", "ops", "MII", "II", "certify", "differential"],
            rows,
            f"{ok_count}/{len(names)} kernels validated end to end "
            "(source = graph = emitted code)",
        )
    )
    for entry in failures:
        print()
        print(entry)
    _finish_trace(args, request)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MIRS-C reproduction (Zalamea et al., MICRO 2001)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--config",
            default="2-(GP4M2-REG32)",
            help="machine configuration, e.g. '4-(GP2M1-REG16)'",
        )
        p.add_argument(
            "--scheduler",
            choices=("mirsc", "baseline", "smt"),
            default="mirsc",
            help="scheduling backend: the paper's MIRS-C heuristic "
            "(default), the non-iterative baseline, or the exact "
            "optimality oracle ('smt'; proves its II minimal)",
        )
        p.add_argument(
            "--ii-search",
            choices=sorted(POLICIES),
            default="linear",
            help="II-search policy for MIRS-C (default: the paper's "
            "linear restart ladder)",
        )
        p.add_argument(
            "--speculation",
            type=positive_int,
            default=None,
            metavar="K",
            help="race K candidate IIs concurrently (default: "
            "$REPRO_SPECULATION or 1, the serial search; results are "
            "identical for every K)",
        )
        p.add_argument("--move-latency", type=int, default=1)
        p.add_argument(
            "--buses",
            type=lambda v: None if v == "inf" else int(v),
            default=2,
            help="inter-cluster buses ('inf' for unbounded)",
        )
        p.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="record a structured trace of the run to PATH (JSONL; "
            "a Perfetto-loadable .chrome.json sibling is written too); "
            "inspect it with 'repro trace summary PATH'",
        )

    def source_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--source",
            default=None,
            metavar="PATH",
            help="schedule a real source loop instead: a file for a "
            "registered frontend parser, or a corpus kernel name "
            "(see 'repro frontend show')",
        )
        p.add_argument(
            "--kernel",
            default=None,
            metavar="NAME",
            help="kernel (function) to pick when --source defines several",
        )

    schedule = sub.add_parser("schedule", help="schedule one loop")
    common(schedule)
    schedule.add_argument(
        "--loop",
        type=workbench_index,
        default=None,
        help="workbench loop index (omit for the built-in DAXPY demo)",
    )
    source_options(schedule)
    schedule.add_argument(
        "--code", action="store_true", help="also emit the VLIW code"
    )
    schedule.set_defaults(func=_cmd_schedule)

    simulate = sub.add_parser(
        "simulate",
        help="execute a loop's generated code on the cycle simulator",
    )
    common(simulate)
    simulate.add_argument(
        "--loop",
        type=workbench_index,
        default=None,
        help="workbench loop index (omit for the built-in DAXPY demo)",
    )
    source_options(simulate)
    simulate.add_argument(
        "--iterations",
        type=positive_int,
        default=100,
        help="loop iterations to execute (rounded up to whole kernel passes)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    analyze = sub.add_parser(
        "analyze",
        help="statically certify the generated code of a workbench subset",
    )
    common(analyze)
    analyze.add_argument(
        "--loops",
        type=workbench_count,
        default=16,
        help="number of workbench loops to certify (default: 16)",
    )
    analyze.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: $REPRO_JOBS or 1; 0 = all CPUs)",
    )
    analyze.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk schedule-result cache",
    )
    analyze.set_defaults(func=_cmd_analyze)

    compare = sub.add_parser("compare", help="MIRS-C vs the baseline [31]")
    common(compare)
    compare.add_argument("--loops", type=workbench_count, default=8)
    compare.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: $REPRO_JOBS or 1; 0 = all CPUs)",
    )
    compare.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk schedule-result cache",
    )
    compare.set_defaults(func=_cmd_compare)

    frontend = sub.add_parser(
        "frontend", help="parse, inspect and validate real source loops"
    )
    frontend_sub = frontend.add_subparsers(
        dest="frontend_command", required=True
    )
    frontend_show = frontend_sub.add_parser(
        "show",
        help="print the analyzed IR of one kernel (or the corpus table)",
    )
    frontend_show.add_argument(
        "source",
        nargs="?",
        default=None,
        help="source file or corpus kernel name (omit to list the corpus "
        "and the registered parsers)",
    )
    frontend_show.add_argument(
        "--kernel",
        default=None,
        metavar="NAME",
        help="kernel (function) to pick when the source defines several",
    )
    frontend_show.add_argument(
        "--config",
        default="2-(GP4M2-REG32)",
        help="machine configuration for the MII breakdown",
    )
    frontend_show.set_defaults(func=_cmd_frontend_show)

    frontend_run = frontend_sub.add_parser(
        "run",
        help="schedule, certify and differentially validate source kernels",
    )
    common(frontend_run)
    frontend_run.add_argument(
        "kernels",
        nargs="*",
        metavar="KERNEL",
        help="corpus kernel names or source files (default: the whole "
        "corpus)",
    )
    frontend_run.add_argument(
        "--iterations",
        type=positive_int,
        default=40,
        help="loop iterations for the differential runs (default: 40)",
    )
    frontend_run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: $REPRO_JOBS or 1; 0 = all CPUs)",
    )
    frontend_run.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk schedule-result cache",
    )
    frontend_run.set_defaults(func=_cmd_frontend_run)

    suite = sub.add_parser("suite", help="workbench statistics")
    suite.add_argument("--loops", type=int, default=60)
    suite.set_defaults(func=_cmd_suite)

    technology = sub.add_parser(
        "technology", help="Figure 2 technology table"
    )
    technology.set_defaults(func=_cmd_technology)

    trace = sub.add_parser(
        "trace", help="inspect structured traces (see --trace / REPRO_TRACE)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary",
        help="validate a JSONL trace and print per-phase / per-attempt "
        "breakdowns",
    )
    trace_summary.add_argument("path", help="JSONL trace file")
    trace_summary.set_defaults(func=_cmd_trace_summary)

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument(
        "--dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    cache.add_argument(
        "--clear", action="store_true", help="delete every cached result"
    )
    cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
