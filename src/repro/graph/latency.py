"""Latency queries shared by MII analysis, ordering and scheduling.

Register dependences take the latency of the *producer* operation on the
target machine (possibly overridden per node, e.g. by the binding
prefetching policy).  Memory and control dependences default to one cycle:
they only impose ordering, not value communication.
"""

from __future__ import annotations

from repro.graph.ddg import DepKind, DependenceGraph, Edge, Node
from repro.machine.config import MachineConfig

#: Default latency of memory/control (ordering-only) dependences.
ORDERING_LATENCY = 1


def node_latency(node: Node, machine: MachineConfig) -> int:
    """Latency of an operation, honoring any per-node override."""
    if node.latency_override is not None:
        return node.latency_override
    return machine.latency(node.kind)


def edge_latency(
    graph: DependenceGraph, edge: Edge, machine: MachineConfig
) -> int:
    """Latency of a dependence edge."""
    if edge.latency is not None:
        return edge.latency
    if edge.kind is DepKind.REG:
        return node_latency(graph.node(edge.src), machine)
    return ORDERING_LATENCY
