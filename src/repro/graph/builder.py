"""A small fluent DSL for constructing loop dependence graphs by hand.

Used by the examples, the tests, and anywhere a loop must be written down
explicitly.  Example - a dot-product-style reduction::

    b = LoopBuilder("dot", trip_count=1000)
    x = b.load(array=0)
    y = b.load(array=1)
    p = b.mul(x, y)
    s = b.add(p)                 # running sum ...
    b.loop_carried(s, s, distance=1)   # ... carried across iterations
    graph = b.build()
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graph.ddg import DependenceGraph, DepKind, Invariant, MemRef, Node
from repro.machine.resources import OpKind


class LoopBuilder:
    """Fluent builder producing a :class:`DependenceGraph`."""

    def __init__(self, name: str = "loop", trip_count: int = 100):
        self._graph = DependenceGraph(name=name, trip_count=trip_count)
        self._array_counter = 0

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _op(self, kind: OpKind, *operands: Node | Invariant, **attrs) -> Node:
        node = self._graph.new_node(kind, **attrs)
        for operand in operands:
            if isinstance(operand, Invariant):
                operand.consumers.add(node.id)
            else:
                self._graph.add_edge(operand.id, node.id, kind=DepKind.REG)
        return node

    def add(self, *operands: Node | Invariant, **attrs) -> Node:
        """An addition/subtraction-class operation (4-cycle, pipelined)."""
        return self._op(OpKind.ADD, *operands, **attrs)

    def mul(self, *operands: Node | Invariant, **attrs) -> Node:
        """A multiplication (4-cycle, pipelined)."""
        return self._op(OpKind.MUL, *operands, **attrs)

    def div(self, *operands: Node | Invariant, **attrs) -> Node:
        """A division (17-cycle, unpipelined)."""
        return self._op(OpKind.DIV, *operands, **attrs)

    def sqrt(self, *operands: Node | Invariant, **attrs) -> Node:
        """A square root (30-cycle, unpipelined)."""
        return self._op(OpKind.SQRT, *operands, **attrs)

    def load(
        self,
        *operands: Node | Invariant,
        array: int | None = None,
        offset: int = 0,
        stride: int = 1,
        **attrs,
    ) -> Node:
        """A load; ``array``/``offset``/``stride`` describe its address
        stream for the cache simulator (a fresh array is allocated when
        none is given)."""
        if array is None:
            array = self._new_array()
        mem_ref = MemRef(array=array, offset=offset, stride=stride)
        return self._op(OpKind.LOAD, *operands, mem_ref=mem_ref, **attrs)

    def store(
        self,
        *operands: Node | Invariant,
        array: int | None = None,
        offset: int = 0,
        stride: int = 1,
        **attrs,
    ) -> Node:
        """A store of the given operand values."""
        if array is None:
            array = self._new_array()
        mem_ref = MemRef(array=array, offset=offset, stride=stride)
        return self._op(OpKind.STORE, *operands, mem_ref=mem_ref, **attrs)

    def invariant(self, name: str = "") -> Invariant:
        """A loop-invariant value (consumed via passing it as an operand)."""
        inv = self._graph.new_invariant()
        if name:
            inv.name = name
        return inv

    # ------------------------------------------------------------------
    # Extra dependences
    # ------------------------------------------------------------------

    def loop_carried(self, src: Node, dst: Node, distance: int = 1) -> None:
        """A loop-carried register dependence (recurrence edge).

        The distance must be at least 1: a distance-0 "loop-carried"
        arc would silently become an intra-iteration dependence, and a
        RecMII computed over it would be wrong (the circuit's latency
        would be divided by the wrong iteration span).
        """
        if distance < 1:
            raise GraphError(
                f"loop-carried edge {src.name} -> {dst.name} has "
                f"distance {distance}; a recurrence must span at least "
                "one iteration (use memory_dep/control_dep for "
                "intra-iteration ordering)"
            )
        self._graph.add_edge(
            src.id, dst.id, kind=DepKind.REG, distance=distance
        )

    def memory_dep(
        self, src: Node, dst: Node, distance: int = 0
    ) -> None:
        """A memory ordering dependence (e.g. store -> load aliasing)."""
        self._graph.add_edge(
            src.id, dst.id, kind=DepKind.MEM, distance=distance
        )

    def control_dep(self, src: Node, dst: Node, distance: int = 0) -> None:
        """A control dependence."""
        self._graph.add_edge(
            src.id, dst.id, kind=DepKind.CTRL, distance=distance
        )

    # ------------------------------------------------------------------

    def _new_array(self) -> int:
        self._array_counter += 1
        return self._array_counter

    def build(self) -> DependenceGraph:
        """Validate and return the constructed graph."""
        self._graph.validate()
        return self._graph
