"""Loop dependence graphs and minimum initiation interval analysis."""

from repro.graph.ddg import (
    DepKind,
    DependenceGraph,
    Edge,
    Invariant,
    MemRef,
    Node,
)
from repro.graph.builder import LoopBuilder
from repro.graph.mii import compute_mii, resource_mii
from repro.graph.recurrences import find_recurrences, recurrence_mii

__all__ = [
    "DepKind",
    "DependenceGraph",
    "Edge",
    "Invariant",
    "MemRef",
    "Node",
    "LoopBuilder",
    "compute_mii",
    "resource_mii",
    "find_recurrences",
    "recurrence_mii",
]
