"""Recurrence (cyclic dependence) analysis and RecMII computation.

A *recurrence circuit* is a dependence cycle; the initiation interval of
any legal modulo schedule satisfies, for every circuit ``C``::

    II >= ceil( sum(latency(e) for e in C) / sum(distance(e) for e in C) )

``RecMII`` is the maximum of this bound over all circuits.  Enumerating
circuits is exponential, so we instead binary-search the smallest II for
which the edge weights ``latency(e) - II * distance(e)`` admit no
positive-weight cycle, checked with a vectorized Floyd-Warshall longest
path closure (max-plus algebra) - an exact, polynomial algorithm.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

import networkx as nx
import numpy as np

from repro.errors import GraphError
from repro.graph.ddg import DependenceGraph
from repro.graph.latency import edge_latency
from repro.machine.config import MachineConfig


@dataclasses.dataclass(frozen=True)
class Recurrence:
    """A strongly connected component containing at least one circuit.

    Attributes:
        nodes: the member node ids.
        rec_mii: the RecMII bound imposed by the circuits inside this
            component alone.
    """

    nodes: frozenset[int]
    rec_mii: int

    def __len__(self) -> int:
        return len(self.nodes)


def _to_networkx(graph: DependenceGraph) -> nx.MultiDiGraph:
    result = nx.MultiDiGraph()
    result.add_nodes_from(graph.node_ids())
    for edge in graph.edges():
        result.add_edge(edge.src, edge.dst)
    return result


def _has_positive_cycle(
    weights: np.ndarray, distances: np.ndarray, ii: int
) -> bool:
    """True if ``weights - ii * distances`` contains a positive cycle.

    Both inputs are dense ``n x n`` max-plus adjacency matrices with
    ``-inf`` marking absent edges (parallel edges already collapsed to the
    most constraining one per candidate II by the caller).
    """
    matrix = weights - ii * distances
    n = matrix.shape[0]
    closure = matrix.copy()
    for k in range(n):
        via_k = closure[:, k, None] + closure[None, k, :]
        np.maximum(closure, via_k, out=closure)
    return bool((np.diagonal(closure) > 0).any())


def _dense_matrices(
    graph: DependenceGraph,
    machine: MachineConfig,
    node_ids: Sequence[int],
) -> list[tuple[int, int, int, int]]:
    """Edge list restricted to ``node_ids`` as (si, di, latency, distance)."""
    index = {node_id: i for i, node_id in enumerate(node_ids)}
    rows = []
    for edge in graph.edges():
        if edge.src in index and edge.dst in index:
            rows.append(
                (
                    index[edge.src],
                    index[edge.dst],
                    edge_latency(graph, edge, machine),
                    edge.distance,
                )
            )
    return rows


def _rec_mii_of(
    graph: DependenceGraph,
    machine: MachineConfig,
    node_ids: Sequence[int],
) -> int:
    """Exact RecMII over the subgraph induced by ``node_ids``."""
    edges = _dense_matrices(graph, machine, node_ids)
    if not edges:
        return 1
    n = len(node_ids)

    def feasible(ii: int) -> bool:
        weights = np.full((n, n), -np.inf)
        distances = np.zeros((n, n))
        # Collapse parallel edges to the most constraining weight at this
        # candidate II.
        for si, di, lat, dist in edges:
            w = lat - ii * dist
            if w > weights[si, di] - ii * distances[si, di]:
                weights[si, di] = lat
                distances[si, di] = dist
        return not _has_positive_cycle(weights, distances, ii)

    low = 1
    high = max(1, sum(lat for (_, _, lat, _) in edges))
    if feasible(low):
        return low
    if not feasible(high):
        # A cycle whose total distance is zero can never be scheduled:
        # its bound grows without limit.
        raise GraphError(
            "dependence graph contains a zero-distance circuit; "
            "no initiation interval can satisfy it"
        )
    while low + 1 < high:
        mid = (low + high) // 2
        if feasible(mid):
            high = mid
        else:
            low = mid
    return high


def find_recurrences(
    graph: DependenceGraph, machine: MachineConfig
) -> list[Recurrence]:
    """All recurrence components, most critical (highest RecMII) first.

    Ties are broken by component size (larger first) and then by the
    smallest member id, so the result is deterministic.
    """
    digraph = _to_networkx(graph)
    recurrences = []
    for component in nx.strongly_connected_components(digraph):
        nodes = frozenset(component)
        is_cyclic = len(nodes) > 1 or any(
            edge.dst == edge.src
            for node_id in nodes
            for edge in graph.out_edges(node_id)
        )
        if not is_cyclic:
            continue
        rec_mii = _rec_mii_of(graph, machine, sorted(nodes))
        recurrences.append(Recurrence(nodes=nodes, rec_mii=rec_mii))
    recurrences.sort(key=lambda r: (-r.rec_mii, -len(r.nodes), min(r.nodes)))
    return recurrences


def recurrence_mii(graph: DependenceGraph, machine: MachineConfig) -> int:
    """RecMII of the whole graph (1 if the graph is acyclic)."""
    if len(graph) == 0:
        return 1
    return _rec_mii_of(graph, machine, graph.node_ids())


def recurrence_nodes(recurrences: list[Recurrence]) -> set[int]:
    """Union of the member nodes of the given recurrences."""
    members: set[int] = set()
    for recurrence in recurrences:
        members |= recurrence.nodes
    return members


def circuit_bound(
    graph: DependenceGraph, machine: MachineConfig, circuit: Sequence[int]
) -> int:
    """RecMII bound of one explicit circuit (mainly for tests).

    ``circuit`` is a node sequence; the edge chosen between consecutive
    nodes is the most constraining parallel edge.
    """
    total_latency = 0
    total_distance = 0
    for src, dst in zip(circuit, list(circuit[1:]) + [circuit[0]], strict=True):
        candidates = [e for e in graph.out_edges(src) if e.dst == dst]
        if not candidates:
            raise ValueError(f"no edge {src} -> {dst} in circuit")
        best = max(
            candidates,
            key=lambda e: (edge_latency(graph, e, machine), -e.distance),
        )
        total_latency += edge_latency(graph, best, machine)
        total_distance += best.distance
    if total_distance == 0:
        raise ValueError("circuit with zero total distance is unschedulable")
    return math.ceil(total_latency / total_distance)
