"""The data dependence graph (DDG) of an innermost loop.

Following Section 3.1 of the paper, the graph ``G`` has one node per loop
operation and edges for register, memory and control dependences.  Each
edge carries an iteration *distance* (0 for intra-iteration dependences).
Loop-*invariant* values are modelled separately: they are not produced by
any node of the loop but are consumed by loop operations and occupy one
register for the whole execution of the loop (one per cluster in which
they are used, Section 3.3.2).

The graph is mutable: the scheduler inserts spill ``load``/``store`` nodes
and inter-cluster ``move`` nodes while it runs, and its backtracking can
remove them again, so the implementation keeps adjacency both ways and
supports cheap node/edge insertion and removal as well as deep cloning
(used when the schedule is restarted at a larger II).
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from collections.abc import Iterable, Iterator

from repro.errors import GraphError
from repro.machine.resources import OpKind


class DepKind(enum.Enum):
    """Kinds of dependence edges (Section 3.1)."""

    REG = "reg"
    MEM = "mem"
    CTRL = "ctrl"


@dataclasses.dataclass(frozen=True)
class MemRef:
    """Memory access pattern of a load/store, used by the cache simulator.

    Attributes:
        array: identifier of the array (or scalar location) accessed.
        offset: base offset in elements within the array.
        stride: elements advanced per loop iteration.
        element_size: bytes per element (8 for double precision).
    """

    array: int
    offset: int = 0
    stride: int = 1
    element_size: int = 8

    def address(self, iteration: int) -> int:
        """Byte address touched at the given iteration."""
        element = self.offset + self.stride * iteration
        return (self.array << 24) + element * self.element_size


@dataclasses.dataclass
class Node:
    """One operation of the loop body.

    Attributes:
        id: unique integer identifier within the graph.
        kind: the operation kind (add, mul, div, sqrt, load, store, move).
        name: human-readable label used in printed schedules.
        mem_ref: access pattern for memory operations, if known.
        latency_override: per-node latency used instead of the machine's
            default; the binding-prefetching policy of Section 4.3 uses it
            to schedule selected loads with miss latency.
        is_spill: True for load/store nodes inserted by the spill
            heuristic (they are excluded from further spilling and always
            scheduled with hit latency, Section 4.3).
        spilled_value: for spill nodes, the id of the node whose value is
            being stored/reloaded (or the invariant id for invariant
            spills).
        move_of: for move nodes, the id of the node whose value is being
            transported between clusters; invariant moves store the
            invariant id in :attr:`move_of_invariant` instead.
        move_of_invariant: for move nodes transporting a loop invariant,
            the invariant's id.
        load_of_invariant: for spill loads re-materializing an invariant
            from memory, the invariant's id.
        src_cluster: for move nodes, the cluster the value is sent from
            (the node's own cluster assignment is the destination).
    """

    id: int
    kind: OpKind
    name: str = ""
    mem_ref: MemRef | None = None
    latency_override: int | None = None
    is_spill: bool = False
    spilled_value: int | None = None
    move_of: int | None = None
    move_of_invariant: int | None = None
    load_of_invariant: int | None = None
    src_cluster: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"{self.kind.value}{self.id}"

    @property
    def is_move(self) -> bool:
        return self.kind is OpKind.MOVE

    @property
    def produces_value(self) -> bool:
        return self.kind.produces_value

    def clone(self) -> "Node":
        return dataclasses.replace(self)


@dataclasses.dataclass(frozen=True)
class Edge:
    """A dependence between two operations.

    Attributes:
        src, dst: node ids.
        kind: register / memory / control dependence.
        distance: iteration distance (``d >= 0``; ``d > 0`` for
            loop-carried dependences).
        latency: dependence latency.  For register dependences ``None``
            means "use the producer's operation latency on the target
            machine" (the normal case); memory and control dependences
            default to 1 cycle.
    """

    src: int
    dst: int
    kind: DepKind = DepKind.REG
    distance: int = 0
    latency: int | None = None

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise GraphError("dependence distance must be non-negative")


@dataclasses.dataclass
class Invariant:
    """A loop-invariant value consumed inside the loop.

    Invariants occupy one register for the whole loop execution in every
    cluster where they are consumed (Section 3.3.2); the spill heuristic
    may elect to drop the register and re-materialize the value via a
    ``move`` from another cluster or a ``load`` from memory.

    Attributes:
        id: unique identifier (its own namespace, distinct from node ids).
        name: label.
        consumers: ids of the nodes that read this invariant.
        mem_ref: the memory location holding the invariant (invariants
            always have a home location in memory and therefore never need
            a spill *store*).
    """

    id: int
    name: str = ""
    consumers: set[int] = dataclasses.field(default_factory=set)
    mem_ref: MemRef | None = None

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"inv{self.id}"

    def clone(self) -> "Invariant":
        return Invariant(
            id=self.id,
            name=self.name,
            consumers=set(self.consumers),
            mem_ref=self.mem_ref,
        )


class DependenceGraph:
    """Mutable dependence graph of one innermost loop.

    In addition to nodes and edges the graph records the loop's expected
    *trip count* (used to turn IIs into execution cycles for Figures 5-7)
    and its loop-invariant values.
    """

    def __init__(self, name: str = "loop", trip_count: int = 100):
        self.name = name
        self.trip_count = trip_count
        #: Unroll factor this graph was produced with (1 = not unrolled);
        #: consumers that reason about iteration-space semantics (the
        #: execution simulator, reporting) read it off the graph.
        self.unroll_factor = 1
        #: Trip count of the *source* loop before any unrolling.  When
        #: ``trip_count * unroll_factor != source_trip_count`` the
        #: unroll factor did not divide the source trip count and a full
        #: execution runs surplus source iterations; the simulator
        #: reports the difference (``repro.sim``).
        self.source_trip_count = trip_count
        self._nodes: dict[int, Node] = {}
        self._out: dict[int, list[Edge]] = {}
        self._in: dict[int, list[Edge]] = {}
        self._invariants: dict[int, Invariant] = {}
        self._next_id = itertools.count()
        #: Mutation observers (the incremental pressure tracker).  Each
        #: listener may implement ``on_edge_added(edge)``,
        #: ``on_edge_removed(edge)`` and ``on_node_removed(node_id)``;
        #: notifications fire *after* the mutation.  Not pickled and not
        #: cloned: observers attach to one live scheduling attempt.
        self._listeners: list = []

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_listeners"] = []
        return state

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    def new_node(self, kind: OpKind, **attrs) -> Node:
        """Create, insert and return a fresh node."""
        node = Node(id=next(self._next_id), kind=kind, **attrs)
        self.add_node(node)
        return node

    def add_node(self, node: Node) -> None:
        if node.id in self._nodes:
            raise GraphError(f"duplicate node id {node.id}")
        self._nodes[node.id] = node
        self._out[node.id] = []
        self._in[node.id] = []
        # Keep the id counter ahead of any externally constructed node.
        self._next_id = itertools.count(
            max(node.id + 1, next(self._next_id))
        )

    def remove_node(self, node_id: int) -> None:
        """Remove a node and every edge touching it."""
        self._require(node_id)
        for edge in list(self._out[node_id]):
            self.remove_edge(edge)
        for edge in list(self._in[node_id]):
            self.remove_edge(edge)
        del self._nodes[node_id]
        del self._out[node_id]
        del self._in[node_id]
        for inv in self._invariants.values():
            inv.consumers.discard(node_id)
        for listener in self._listeners:
            listener.on_node_removed(node_id)

    def node(self, node_id: int) -> Node:
        self._require(node_id)
        return self._nodes[node_id]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[Node]:
        return iter(list(self._nodes.values()))

    def node_ids(self) -> list[int]:
        return list(self._nodes)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def add_edge(
        self,
        src: int,
        dst: int,
        *,
        kind: DepKind = DepKind.REG,
        distance: int = 0,
        latency: int | None = None,
    ) -> Edge:
        self._require(src)
        self._require(dst)
        if kind is DepKind.REG and not self._nodes[src].produces_value:
            raise GraphError(
                f"node {src} ({self._nodes[src].kind}) produces no register "
                "value and cannot be the source of a REG dependence"
            )
        edge = Edge(src=src, dst=dst, kind=kind, distance=distance, latency=latency)
        self._out[src].append(edge)
        self._in[dst].append(edge)
        for listener in self._listeners:
            listener.on_edge_added(edge)
        return edge

    def remove_edge(self, edge: Edge) -> None:
        try:
            self._out[edge.src].remove(edge)
            self._in[edge.dst].remove(edge)
        except (KeyError, ValueError) as exc:
            raise GraphError(f"edge {edge} not present") from exc
        for listener in self._listeners:
            listener.on_edge_removed(edge)

    def out_edges(self, node_id: int) -> list[Edge]:
        self._require(node_id)
        return list(self._out[node_id])

    def in_edges(self, node_id: int) -> list[Edge]:
        self._require(node_id)
        return list(self._in[node_id])

    def edges(self) -> Iterator[Edge]:
        for edges in list(self._out.values()):
            yield from list(edges)

    def num_edges(self) -> int:
        return sum(len(edges) for edges in self._out.values())

    def preds(self, node_id: int) -> set[int]:
        return {edge.src for edge in self._in[node_id]}

    def succs(self, node_id: int) -> set[int]:
        return {edge.dst for edge in self._out[node_id]}

    def reg_consumers(self, node_id: int) -> list[Edge]:
        """Register-dependence out-edges: the uses of this node's value."""
        return [e for e in self._out[node_id] if e.kind is DepKind.REG]

    def reg_producers(self, node_id: int) -> list[Edge]:
        """Register-dependence in-edges: the operands of this node."""
        return [e for e in self._in[node_id] if e.kind is DepKind.REG]

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def new_invariant(
        self, consumers: Iterable[int] = (), mem_ref: MemRef | None = None
    ) -> Invariant:
        inv_id = len(self._invariants)
        while inv_id in self._invariants:
            inv_id += 1
        inv = Invariant(id=inv_id, consumers=set(consumers), mem_ref=mem_ref)
        for consumer in inv.consumers:
            self._require(consumer)
        self._invariants[inv_id] = inv
        return inv

    def invariants(self) -> list[Invariant]:
        return list(self._invariants.values())

    def invariant(self, inv_id: int) -> Invariant:
        if inv_id not in self._invariants:
            raise GraphError(f"unknown invariant {inv_id}")
        return self._invariants[inv_id]

    def invariants_of(self, node_id: int) -> list[Invariant]:
        """The invariants consumed by a node."""
        return [
            inv for inv in self._invariants.values() if node_id in inv.consumers
        ]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def count_kind(self, kind: OpKind) -> int:
        return sum(1 for node in self._nodes.values() if node.kind is kind)

    def memory_nodes(self) -> list[Node]:
        return [n for n in self._nodes.values() if n.kind.is_memory]

    def kinds(self) -> set[OpKind]:
        return {node.kind for node in self._nodes.values()}

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------

    def clone(self) -> "DependenceGraph":
        """Deep copy; used to restore the pristine graph on II restarts.

        Mutation listeners are *not* cloned: they belong to one live
        scheduling attempt, and the clone starts unobserved.
        """
        copy = DependenceGraph(name=self.name, trip_count=self.trip_count)
        copy.unroll_factor = self.unroll_factor
        copy.source_trip_count = self.source_trip_count
        for node in self._nodes.values():
            copy.add_node(node.clone())
        for edge in self.edges():
            copy.add_edge(
                edge.src,
                edge.dst,
                kind=edge.kind,
                distance=edge.distance,
                latency=edge.latency,
            )
        for inv in self._invariants.values():
            copy._invariants[inv.id] = inv.clone()
        return copy

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`GraphError` if internal invariants are broken."""
        for node_id, edges in self._out.items():
            for edge in edges:
                if edge.src != node_id:
                    raise GraphError("corrupt out-adjacency")
                if edge.dst not in self._nodes:
                    raise GraphError(f"edge to unknown node {edge.dst}")
                if edge not in self._in[edge.dst]:
                    raise GraphError("edge missing from in-adjacency")
        for node_id, edges in self._in.items():
            for edge in edges:
                if edge.dst != node_id:
                    raise GraphError("corrupt in-adjacency")
                if edge not in self._out[edge.src]:
                    raise GraphError("edge missing from out-adjacency")
        for inv in self._invariants.values():
            for consumer in inv.consumers:
                if consumer not in self._nodes:
                    raise GraphError(
                        f"invariant {inv.id} consumed by unknown node {consumer}"
                    )

    def _require(self, node_id: int) -> None:
        if node_id not in self._nodes:
            raise GraphError(f"unknown node {node_id}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DependenceGraph({self.name!r}, nodes={len(self._nodes)}, "
            f"edges={self.num_edges()}, invariants={len(self._invariants)})"
        )
