"""Minimum initiation interval (MII) computation.

``MII = max(ResMII, RecMII)`` where

* ``ResMII`` is the resource-constrained bound: total busy cycles
  demanded from each resource class divided by the number of instances,
  rounded up.  Unpipelined operations (div, sqrt) contribute their whole
  occupancy, and - because a single physical unit must host all the
  reservations of one operation - ResMII is additionally bounded below by
  the largest single-operation occupancy.
* ``RecMII`` is the recurrence-constrained bound (see
  :mod:`repro.graph.recurrences`).

Cluster counts enter ResMII through the *total* number of functional
units; the degradation caused by splitting them into clusters (move
traffic, bus conflicts) is precisely what the schedulers must fight, so it
is deliberately not part of the lower bound.
"""

from __future__ import annotations

import math

from repro.errors import GraphError
from repro.graph.ddg import DependenceGraph
from repro.graph.recurrences import recurrence_mii
from repro.machine.config import MachineConfig
from repro.machine.reservation import max_occupancy
from repro.machine.resources import OpKind


def resource_mii(graph: DependenceGraph, machine: MachineConfig) -> int:
    """Resource-constrained lower bound on the initiation interval."""
    busy_gp = 0
    busy_mem = 0
    busy_moves = 0
    for node in graph.nodes():
        if node.kind.is_compute:
            busy_gp += machine.occupancy(node.kind)
        elif node.kind.is_memory:
            busy_mem += 1
        elif node.kind is OpKind.MOVE:
            busy_moves += 1
    bounds = [1]
    if busy_gp:
        bounds.append(math.ceil(busy_gp / machine.total_gp_units))
        bounds.append(max_occupancy(machine, graph.kinds()))
    if busy_mem:
        if machine.total_mem_ports == 0:
            # Part of the repo's error taxonomy (repro.errors): callers
            # guard whole scheduling runs with ``except ReproError``.
            raise GraphError(
                f"loop {graph.name!r} has {busy_mem} memory operation(s) "
                f"but machine {machine.name!r} has no memory ports; no "
                "initiation interval can accommodate them"
            )
        bounds.append(math.ceil(busy_mem / machine.total_mem_ports))
    if busy_moves and machine.buses is not None:
        bounds.append(math.ceil(busy_moves / machine.buses))
    return max(bounds)


def compute_mii(graph: DependenceGraph, machine: MachineConfig) -> int:
    """``max(ResMII, RecMII)`` - the scheduler's starting II."""
    if len(graph) == 0:
        return 1
    return max(resource_mii(graph, machine), recurrence_mii(graph, machine))
