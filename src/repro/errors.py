"""Exception types used across the MIRS-C reproduction.

Every failure mode that a caller may reasonably want to catch has its own
exception class; all of them derive from :class:`ReproError` so that a
single ``except ReproError`` is enough to guard a whole scheduling run.

The module also owns the *optional-dependency gate*
(:func:`optional_import` / :func:`require_optional`): the lazy-probe /
typed-error / install-hint pattern the tree-sitter C frontend pioneered
in ``repro.frontend.cparse``, extracted here so every optional backend
(tree-sitter, z3) gates identically.
"""

from __future__ import annotations

import importlib
from types import ModuleType


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """A machine configuration is malformed or internally inconsistent."""


class GraphError(ReproError):
    """A dependence graph operation was invalid (unknown node, bad edge...)."""


class FrontendError(ReproError):
    """A source loop could not be parsed, analyzed or lowered.

    Raised by :mod:`repro.frontend` with a message naming the offending
    construct (and, where available, the kernel and source location), so
    corpus curation and CLI users see *why* a loop is outside the
    supported fragment rather than a downstream type error.
    """


class SchedulingError(ReproError):
    """The scheduler reached an internally inconsistent state."""


class ConvergenceError(SchedulingError):
    """A scheduler failed to find a valid schedule within its II budget.

    The paper's baseline algorithm [31] exhibits exactly this failure mode
    on register-constrained configurations (Table 2, column "Not Cnvr");
    MIRS-C itself is expected never to raise it because spilling always
    provides an escape hatch.

    Attributes:
        last_ii: the II of the *last attempt in search order* — under a
            jumping policy (geometric backfill probes descend) this is
            not the largest II probed.
        highest_ii: the largest II actually probed by the search.
        kind_histogram: ``{failure kind: count}`` over every executed
            attempt of the search that gave up (the
            ``AttemptOutcome.kind`` values), so the dominant failure
            mode is machine-readable without a tracer attached.
    """

    def __init__(
        self,
        message: str,
        last_ii: int | None = None,
        highest_ii: int | None = None,
        kind_histogram: dict[str, int] | None = None,
    ):
        super().__init__(message)
        self.last_ii = last_ii
        self.highest_ii = highest_ii if highest_ii is not None else last_ii
        self.kind_histogram = dict(kind_histogram or {})


class AllocationError(ReproError):
    """Register allocation could not complete with the given register file."""


class SimulationError(ReproError):
    """The execution simulator hit malformed code (an instruction read a
    register no instruction ever defines, a bundle fell outside the
    pipeline structure...): emitted code and schedule disagree."""


class CodegenError(ReproError, ValueError):
    """Code cannot be emitted for a schedule.

    Also a :class:`ValueError` for backward compatibility with callers
    that guarded :func:`repro.codegen.generate_code` before this class
    existed.

    Attributes:
        loop: name of the loop whose schedule was rejected.
        kind: machine-readable failure kind — ``"not-converged"`` (no
            schedule to emit) or ``"register-infeasible"`` (the
            allocation does not fit the machine's register files).
    """

    def __init__(self, message: str, *, loop: str, kind: str):
        super().__init__(message)
        self.loop = loop
        self.kind = kind


class CertificationError(ReproError):
    """Emitted code failed static certification.

    Raised by the ``REPRO_STATIC_CERTIFY=1`` sanitizer hook in
    :func:`repro.codegen.generate_code`; the full
    :class:`repro.analysis.CertifierReport` rides along.

    Attributes:
        loop: name of the certified loop.
        report: the rejecting :class:`~repro.analysis.CertifierReport`.
    """

    def __init__(self, message: str, *, loop: str, report: object = None):
        super().__init__(message)
        self.loop = loop
        self.report = report


class OptionalDependencyError(ReproError, ImportError):
    """An optional third-party dependency is not installed.

    Also an :class:`ImportError` so callers that probe features with the
    standard ``except ImportError`` idiom keep working.  The message
    always carries an install hint; the machine-readable pieces ride as
    attributes so CLI/report layers can render their own.

    Attributes:
        module: the top-level module name that failed to import.
        feature: human name of the gated feature (``"the z3 exact
            scheduling backend"``).
        hint: how to install the dependency (``"pip install z3-solver"``).
    """

    def __init__(self, module: str, *, feature: str, hint: str):
        super().__init__(
            f"{feature} needs the optional {module!r} package "
            f"({hint}); it is not installed"
        )
        self.module = module
        self.feature = feature
        self.hint = hint


# ----------------------------------------------------------------------
# The optional-dependency gate
# ----------------------------------------------------------------------


def optional_import(name: str) -> ModuleType | None:
    """Import an optional module, answering ``None`` when it is absent.

    The quiet probe half of the gate: availability predicates
    (``c_parser_available``, ``z3_available``) call this so asking
    "is the feature there?" never raises.
    """
    try:
        return importlib.import_module(name)
    except ImportError:
        return None


def require_optional(name: str, *, feature: str, hint: str) -> ModuleType:
    """Import an optional module or raise the typed, hinted error.

    The loud half of the gate, called lazily on first *use* of the
    feature (never at package import time): returns the module when
    present, raises :class:`OptionalDependencyError` naming the feature
    and the install command when absent.
    """
    module = optional_import(name)
    if module is None:
        raise OptionalDependencyError(name, feature=feature, hint=hint)
    return module
