"""Resumable attempt tasks and the speculative parallel II search.

The paper's driver (Figure 4) explores the II ladder one attempt at a
time, yet every fixed-II attempt is an independent subproblem: it needs
only the pristine graph, the HRMS priorities, the machine and the
parameter set.  This module makes that subproblem a first-class,
picklable value:

* :class:`AttemptTask` — everything one attempt needs, shippable to
  another process (or, later, another machine);
* :class:`AttemptResult` — the structured
  :class:`~repro.core.search.AttemptOutcome` plus, when the attempt
  scheduled, a serialized :class:`FeasibleState` that
  :class:`~repro.core.mirsc.MirsC` can finalize without re-running the
  attempt;
* :class:`AttemptEngine` — the fixed-II attempt loop itself (steps
  (1)–(6) of Figure 4), extracted from ``MirsC`` so the serial driver
  and the worker processes execute the identical code path;
* :class:`SerialAttemptRunner` / :class:`PoolAttemptRunner` — pluggable
  executors for attempt tasks (in-process, or raced over per-attempt
  worker processes with revocable cancellation);
* :class:`SpeculativeSearchDriver` — races a frontier of K candidate
  IIs proposed by the configured
  :class:`~repro.core.search.IISearchPolicy`, retiring every
  strictly-higher in-flight candidate once a lower II completes
  feasibly.

Determinism
-----------

The committed result must be bit-identical to the serial driver's
regardless of completion order.  The driver never trusts arrival order:
after every batch of completions it *replays* the search policy from
``first_ii`` over the completed outcomes.  The replay either runs off
the end (search finished — the committed result is the lowest feasible
II on the replayed path, exactly the serial driver's choice) or stops at
the first II whose outcome is still unknown; that II anchors the next
frontier.  Speculative candidates beyond the anchor are predicted by
feeding the same policy a conservative synthetic failure
(:func:`predicted_failure`) for each not-yet-completed II, so the
frontier follows the policy's own trajectory.  Mispredicted attempts are
cancelled (or simply ignored by the replay) — they can change wall-clock
time and ``stats.search_trace``, never the schedule.
"""

from __future__ import annotations

import atexit
import dataclasses
import multiprocessing
import multiprocessing.connection
import time

from repro.cluster.moves import add_move, next_needed_move
from repro.cluster.selection import select_cluster
from repro.core.params import MirsParams
from repro.core.scheduling import schedule_node
from repro.core.search import AttemptOutcome, OutcomeKind, predicted_failure
from repro.core.state import SchedulerState, SchedulerStats
from repro.errors import SchedulingError
from repro.graph.ddg import DepKind, DependenceGraph
from repro.graph.latency import edge_latency
from repro.machine.config import MachineConfig
from repro.obs.metrics import SearchStats
from repro.obs.tracer import NULL_TRACER, RecordingTracer, Tracer
from repro.schedule.partial import PartialSchedule
from repro.schedule.regalloc import allocate_registers
from repro.spill.heuristics import check_and_insert_spill


# ----------------------------------------------------------------------
# The attempt-task values
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True, eq=False)
class AttemptTask:
    """One fixed-II scheduling attempt, as a self-contained value.

    Attributes:
        graph: the pristine loop (the attempt clones it; the task stays
            reusable).
        machine: target configuration.
        params: algorithm parameters (the II-search policy they carry is
            irrelevant to a fixed-II attempt and excluded from the
            attempt cache key).
        ii: the II to attempt.
        priorities: HRMS priorities (node id -> priority), computed once
            per search and shared by every task of that search.
        graph_hash: stable content hash of ``graph``
            (:func:`repro.exec.hashing.stable_hash` over
            :func:`~repro.exec.hashing.canonical_graph`), computed once
            per search so per-attempt cache keys do not re-canonicalize
            the graph K times.
        trace: record a per-attempt event trace in the worker and ship
            it back on the :class:`AttemptResult` (see
            :mod:`repro.obs`).  Excluded from the attempt cache key —
            tracing never changes what an attempt computes.
    """

    graph: DependenceGraph
    machine: MachineConfig
    params: MirsParams
    ii: int
    priorities: dict[int, float]
    graph_hash: str
    trace: bool = False

    def cache_key(self) -> str:
        """Content-addressed key of this attempt (see
        :func:`repro.exec.hashing.attempt_cache_key`)."""
        from repro.exec.hashing import attempt_cache_key

        return attempt_cache_key(self)

    def with_ii(self, ii: int) -> AttemptTask:
        return dataclasses.replace(self, ii=ii)


@dataclasses.dataclass
class FeasibleState:
    """The serializable remains of a successful attempt.

    Carries exactly what :meth:`repro.core.mirsc.MirsC._finalize` needs:
    the mutated graph (spills and moves included), the complete partial
    schedule, the spilled-invariant markers, the attempt's counters and
    the incremental memory-operation count.  The live
    :class:`~repro.schedule.pressure.PressureTracker` is detached before
    capture, so the object pickles cleanly across process boundaries.
    """

    ii: int
    graph: DependenceGraph
    schedule: PartialSchedule
    spilled_invariants: set[tuple[int, int]]
    stats: SchedulerStats
    memory_traffic: int

    @classmethod
    def from_state(cls, state: SchedulerState) -> FeasibleState:
        state.pressure.detach()
        return cls(
            ii=state.ii,
            graph=state.graph,
            schedule=state.schedule,
            spilled_invariants=state.spilled_invariants,
            stats=state.stats,
            memory_traffic=state.memory_operation_count(),
        )


@dataclasses.dataclass
class AttemptResult:
    """What one executed :class:`AttemptTask` produced.

    ``feasible`` is ``None`` exactly when ``outcome.scheduled`` is
    false.  ``seconds`` is the worker-side wall clock (diagnostic).
    ``trace`` is the worker-side event trace
    (:meth:`repro.obs.RecordingTracer.export` payload) when the task
    asked for one — shipped back over the runner's private pipe and
    merged into the parent trace; stripped before attempt-cache writes
    (a cached result's timeline belongs to the run that computed it).
    """

    ii: int
    outcome: AttemptOutcome
    feasible: FeasibleState | None = None
    seconds: float = 0.0
    trace: dict | None = None


def run_attempt(task: AttemptTask) -> AttemptResult:
    """Execute one attempt task (the pool workers' entry point)."""
    started = time.perf_counter()
    tracer: Tracer = NULL_TRACER
    if task.trace:
        tracer = RecordingTracer(tid=f"attempt-ii{task.ii}")
    engine = AttemptEngine(task.machine, task.params, tracer=tracer)
    state, outcome = engine.run(task.graph.clone(), task.ii, task.priorities)
    feasible = FeasibleState.from_state(state) if state is not None else None
    return AttemptResult(
        ii=task.ii,
        outcome=outcome,
        feasible=feasible,
        seconds=time.perf_counter() - started,
        trace=tracer.export() if task.trace else None,
    )


# ----------------------------------------------------------------------
# The fixed-II attempt loop (Figure 4 steps (1)-(6)), shared verbatim by
# the serial MirsC driver and the attempt-task workers.
# ----------------------------------------------------------------------


class AttemptEngine:
    """Runs one scheduling attempt at a fixed II (Figure 4's inner loop)."""

    def __init__(
        self,
        machine: MachineConfig,
        params: MirsParams,
        tracer: Tracer = NULL_TRACER,
    ):
        self.machine = machine
        self.params = params
        self.tracer = tracer
        self._bound_churn = params.effective_bound_eject_churn()

    # ------------------------------------------------------------------

    def run(
        self,
        graph: DependenceGraph,
        ii: int,
        priorities: dict[int, float],
    ) -> tuple[SchedulerState | None, AttemptOutcome]:
        """One scheduling attempt at a fixed II.

        Returns ``(state, outcome)``; ``state`` is ``None`` when the
        attempt failed, and ``outcome`` records which of the step-(6)
        restart conditions fired (plus the measured pressure deficit).

        With tracing on, the attempt is one ``attempt`` span carrying
        the outcome kind and the attempt's counters (spans stay at
        attempt granularity — never per placement — so the disabled
        path costs nothing measurable).
        """
        tracer = self.tracer
        state = SchedulerState(
            graph, self.machine, ii, priorities, self.params, tracer=tracer
        )
        if not tracer.enabled:
            return self._drive(state)
        token = tracer.begin("attempt", "schedule", ii=ii)
        final_state, outcome = self._drive(state)
        stats = state.stats
        tracer.end(
            token,
            kind=outcome.kind.value,
            scheduled=outcome.scheduled,
            rounds=outcome.final_rounds,
            budget_left=outcome.budget_left,
            deficit=sum(outcome.pressure_deficit.values()),
            ejections=stats.ejections,
            spills=stats.spill_stores_added + stats.spill_loads_added,
            invariant_spills=stats.invariant_spills,
            moves_added=stats.moves_added,
            nodes_scheduled=stats.nodes_scheduled,
            pressure_queries=state.pressure.queries,
            allocator_queries=(
                0 if state.colouring is None else state.colouring.queries
            ),
        )
        return final_state, outcome

    def _drive(
        self, state: SchedulerState
    ) -> tuple[SchedulerState | None, AttemptOutcome]:
        final_rounds = 0
        max_final_rounds = self.params.final_round_cap_for(
            self.machine.clusters, len(state.graph)
        )
        placements_since_check = 0

        while True:
            if state.pl.empty():
                # Steps (4)+(5) in the drained regime: true register
                # allocation, then spill/balance/eject until it fits.
                acted = self._checked_spill(state, final=True)
                if state.pl.empty():
                    if self._fits_registers(state):
                        return state, self._outcome(
                            state, OutcomeKind.SCHEDULED, final_rounds
                        )
                    final_rounds += 1
                    if not acted:
                        return None, self._outcome(
                            state,
                            OutcomeKind.REGISTER_INFEASIBLE,
                            final_rounds,
                        )
                    if final_rounds > max_final_rounds:
                        return None, self._outcome(
                            state, OutcomeKind.ROUND_CAP, final_rounds
                        )
                    continue
                if self._churned_out(state, max_final_rounds):
                    return None, self._outcome(
                        state, OutcomeKind.ROUND_CAP, final_rounds
                    )

            # Step (6): Restart_Schedule conditions.
            if state.budget <= 0:
                return None, self._outcome(
                    state, OutcomeKind.BUDGET_EXHAUSTED, final_rounds
                )
            if state.memory_traffic_infeasible():
                return None, self._outcome(
                    state, OutcomeKind.TRAFFIC_INFEASIBLE, final_rounds
                )

            # Step (2): pick the highest-priority node.
            node_id = state.pl.pop()
            if node_id not in state.graph:
                continue  # removed move still queued
            if state.schedule.is_scheduled(node_id):
                continue
            node = state.graph.node(node_id)

            if node.is_move:
                self._reschedule_move(state, node_id)
                state.budget -= 1
                continue

            # Step (C1): cluster selection.
            cluster = select_cluster(state, node)

            # Step (C2): insert and schedule the needed moves.
            guard = 0
            while True:
                plan = next_needed_move(state, node, cluster)
                if plan is None:
                    break
                move = add_move(state, plan)
                schedule_node(state, move, plan.dst_cluster)
                guard += 1
                if guard > 4 * self.machine.clusters + 8:
                    # Communication livelock: burn budget so the restart
                    # rule eventually fires.
                    state.budget -= guard
                    break

            # Step (3): schedule U itself.
            schedule_node(state, node, cluster)

            # Steps (4)+(5): register pressure check (gauged regime).
            placements_since_check += 1
            if (
                placements_since_check >= self.params.spill_check_interval
                or state.pl.empty()
            ):
                placements_since_check = 0
                self._checked_spill(state, final=False)
                if self._churned_out(state, max_final_rounds):
                    return None, self._outcome(
                        state, OutcomeKind.ROUND_CAP, final_rounds
                    )
            state.budget -= 1

    # ------------------------------------------------------------------

    def _pressure_deficit(self, state: SchedulerState) -> dict[int, int]:
        """Per-cluster ``MaxLive - AR`` (positive entries only)."""
        available = state.machine.cluster.registers
        if available is None:
            return {}
        return {
            cluster: live - available
            for cluster, live in sorted(state.pressure.max_live_all().items())
            if live > available
        }

    def _outcome(
        self, state: SchedulerState, kind: OutcomeKind, final_rounds: int = 0
    ) -> AttemptOutcome:
        suggested = state.ii + 1
        if kind is OutcomeKind.TRAFFIC_INFEASIBLE:
            suggested = state.suggested_restart_ii()
        return AttemptOutcome(
            ii=state.ii,
            kind=kind,
            pressure_deficit=(
                {} if kind is OutcomeKind.SCHEDULED
                else self._pressure_deficit(state)
            ),
            registers_available=state.machine.cluster.registers,
            budget_left=state.budget,
            suggested_ii=suggested,
            final_rounds=final_rounds,
        )

    # ------------------------------------------------------------------

    def _checked_spill(self, state: SchedulerState, *, final: bool) -> bool:
        """Run the spill check, tracking eject-only churn when bounded.

        With ``bound_eject_churn`` off (the paper-exact default) this is
        exactly ``check_and_insert_spill``.  With it on, consecutive
        checks whose only action was a critical-row ejection are
        counted: an eject-and-replace cycle makes no measurable
        progress (no spill, no balance move — the victim goes straight
        back to the slot pool), yet the paper's driver bounds it only
        by the restart budget, which takes thousands of placements to
        drain.  The counter resets whenever a check spills or balances.
        """
        if not self._bound_churn:
            return check_and_insert_spill(state, final=final)
        stats = state.stats
        progress_before = (
            stats.spill_stores_added + stats.spill_loads_added
            + stats.invariant_spills + stats.balance_shifts
        )
        ejections_before = stats.ejections
        acted = check_and_insert_spill(state, final=final)
        if acted:
            progressed = (
                stats.spill_stores_added + stats.spill_loads_added
                + stats.invariant_spills + stats.balance_shifts
            ) != progress_before
            if progressed:
                state.eject_churn_run = 0
            elif stats.ejections > ejections_before:
                state.eject_churn_run += 1
        return acted

    def _churned_out(self, state: SchedulerState, cap: int) -> bool:
        """True when bounded eject-only churn exceeded the round cap."""
        return self._bound_churn and state.eject_churn_run > cap

    # ------------------------------------------------------------------

    def _reschedule_move(self, state: SchedulerState, move_id: int) -> None:
        """Re-place a move that was ejected by a resource conflict.

        The paper re-validates communication decisions when operations
        are picked up again: a move whose endpoints changed or vanished
        is removed, and the ordinary Need_Move machinery recreates it
        later if it is still required.
        """
        move = state.graph.node(move_id)
        consumers = [
            e.dst
            for e in state.graph.out_edges(move_id)
            if e.kind is DepKind.REG and state.schedule.is_scheduled(e.dst)
        ]
        if not consumers:
            state.remove_move(move_id)
            return

        # The value must arrive where the consumer *reads* it: a consumer
        # that is itself a move (a chained communication) reads in its
        # declared source cluster, not in the cluster it executes in.
        def read_cluster(consumer_id: int) -> int:
            consumer = state.graph.node(consumer_id)
            if consumer.is_move and consumer.src_cluster is not None:
                return consumer.src_cluster
            return state.schedule.cluster(consumer_id)

        dst_cluster = read_cluster(consumers[0])
        # One move serves one destination cluster.  Consumers re-placed
        # into *other* clusters while this move sat unscheduled would be
        # silently left reading cross-cluster by whatever is decided
        # below (removal reconnects them straight to the producer);
        # eject them instead, so the ordinary Need_Move machinery
        # re-creates their communication when they are picked up again.
        # (Surfaced by the paper-scale suite: reduction loops on the
        # clustered machines.)
        for consumer_id in consumers[1:]:
            if state.schedule.is_scheduled(consumer_id) and (
                read_cluster(consumer_id) != dst_cluster
            ):
                state.eject_node(consumer_id)
        if move.move_of_invariant is None:
            producers = [
                e.src
                for e in state.graph.in_edges(move_id)
                if e.kind is DepKind.REG
            ]
            if not producers or not state.schedule.is_scheduled(producers[0]):
                state.remove_move(move_id)
                return
            src_cluster = state.schedule.cluster(producers[0])
            if src_cluster == dst_cluster:
                # Removal reconnects the (scheduled) consumers straight
                # to the (scheduled) producer; while the move sat off
                # schedule its chain imposed no timing constraint, so
                # the merged direct edge may be violated at the current
                # placements.  Eject such consumers - they re-place
                # against the restored dependence.  (Also surfaced by
                # the paper-scale suite.)
                state.remove_move(move_id)
                self._eject_violated_consumers(
                    state, producers[0], consumers
                )
                return
            move.src_cluster = src_cluster
        schedule_node(state, move, dst_cluster)

    def _eject_violated_consumers(
        self, state: SchedulerState, producer: int, consumers: list[int]
    ) -> None:
        """Eject scheduled consumers whose direct edge from ``producer``
        is violated (used after a move removal merges edges between
        scheduled endpoints)."""
        schedule = state.schedule
        if not schedule.is_scheduled(producer):
            return
        start = schedule.time(producer)
        ii = state.ii
        for consumer_id in dict.fromkeys(consumers):
            if consumer_id == producer:
                continue
            if not schedule.is_scheduled(consumer_id):
                continue
            consumer_time = schedule.time(consumer_id)
            for edge in state.graph.out_edges(producer):
                if edge.dst != consumer_id:
                    continue
                latency = edge_latency(state.graph, edge, state.machine)
                if consumer_time - start - latency + ii * edge.distance < 0:
                    state.eject_node(consumer_id)
                    break

    # ------------------------------------------------------------------

    def _fits_registers(self, state: SchedulerState) -> bool:
        available = state.machine.cluster.registers
        if available is None:
            return True
        # MaxLive is a lower bound on the allocation (the colouring
        # never beats it), so an over-budget cluster fails without
        # running the allocator; the exact colouring only arbitrates the
        # fitting side (footnote 2: MaxLive occasionally underestimates).
        if any(
            live > available
            for live in state.pressure.max_live_all().values()
        ):
            return False
        if state.colouring is not None:
            # Incremental path: per-cluster counts from the engine's
            # caches (only clusters whose lifetimes changed recolour).
            return all(
                used <= available
                for used in state.colouring.registers_used_all().values()
            )
        allocations = allocate_registers(
            state.graph,
            state.schedule,
            state.machine,
            state.pressure,
            spilled_invariants=state.spilled_invariants,
        )
        return all(
            alloc.registers_used <= available
            for alloc in allocations.values()
        )


# ----------------------------------------------------------------------
# Attempt runners
# ----------------------------------------------------------------------


class AttemptRunner:
    """The execution contract the speculative driver programs against.

    A runner holds at most one in-flight attempt per II.  ``submit``
    enqueues a task; ``wait(needed_ii)`` blocks until at least one
    in-flight attempt completes (the needed II must be in flight);
    ``cancel`` revokes in-flight attempts — revoked IIs may be
    re-submitted later (a traffic-driven jump can make the serial path
    need an II above a known-feasible one); ``finish`` ends one search,
    discarding whatever is still pending.
    """

    def pending(self) -> set[int]:
        raise NotImplementedError

    def submit(self, task: AttemptTask) -> None:
        raise NotImplementedError

    def wait(self, needed_ii: int) -> list[AttemptResult]:
        raise NotImplementedError

    def cancel(self, iis) -> int:
        raise NotImplementedError

    def finish(self) -> None:
        raise NotImplementedError


class SerialAttemptRunner(AttemptRunner):
    """In-process runner: executes only the II the driver actually needs.

    Speculative submissions sit in the queue and are simply never run
    unless they become the needed II, so a K>1 search over this runner
    does exactly the serial driver's work — it is the degenerate (and
    always-available) executor, used automatically where nested process
    pools are impossible (inside ``repro.exec`` pool workers, which are
    daemonic).
    """

    def __init__(self) -> None:
        self._queued: dict[int, AttemptTask] = {}

    def pending(self) -> set[int]:
        return set(self._queued)

    def submit(self, task: AttemptTask) -> None:
        self._queued[task.ii] = task

    def wait(self, needed_ii: int) -> list[AttemptResult]:
        task = self._queued.pop(needed_ii, None)
        if task is None:
            raise SchedulingError(
                f"attempt runner asked to wait on II={needed_ii}, "
                "which was never submitted"
            )
        return [run_attempt(task)]

    def cancel(self, iis) -> int:
        revoked = 0
        for ii in list(iis):
            if self._queued.pop(ii, None) is not None:
                revoked += 1
        return revoked

    def finish(self) -> None:
        self._queued.clear()


def _attempt_worker(conn) -> None:
    """Worker-process loop: tasks arrive on the private pipe, results go
    back on it; EOF (the parent closed its end) retires the worker.

    Exceptions are shipped through the pipe too, so the parent re-raises
    them at the :meth:`PoolAttemptRunner.wait` call site instead of
    mistaking a crashed attempt for a cancelled one.
    """
    try:
        while True:
            try:
                task = conn.recv()
            except EOFError:
                return
            try:
                result: object = run_attempt(task)
            except BaseException as exc:  # noqa: BLE001 - re-raised in parent
                result = exc
            conn.send(result)
    finally:
        conn.close()


class PoolAttemptRunner(AttemptRunner):
    """Races attempts over persistent workers with *private* pipes.

    Each worker owns a dedicated duplex pipe and carries one attempt at
    a time, so workers share nothing with each other: revoking an
    attempt terminates just its worker, and a worker killed mid-write
    corrupts only its own, already-discarded pipe.  A shared
    ``multiprocessing.Pool`` cannot revoke that safely — terminating it
    can kill a worker while it holds the shared result-queue lock,
    deadlocking the parent's task-handler thread (CPython bpo-29759;
    the speculative suite hit exactly that hang intermittently).

    Workers are forked lazily on first use, stay warm across searches
    (one runner serves a whole suite), and are respawned only when a
    cancellation kills one — the fork cost is per *revocation*, not per
    attempt.  ``processes`` is the width the runner was sized for; the
    driver's frontier discipline keeps in-flight attempts at or near
    it, and submissions beyond it fork extra workers rather than queue
    — brief over-subscription costs scheduling fairness, never
    correctness.
    """

    def __init__(self, processes: int):
        self.processes = max(1, processes)
        self._ctx = multiprocessing.get_context()
        self._idle: list[tuple] = []  # warm (process, conn) workers
        self._inflight: dict[int, tuple] = {}  # ii -> (process, conn)

    # ------------------------------------------------------------------

    def _spawn(self) -> tuple:
        ours, theirs = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_attempt_worker,
            args=(theirs,),
            daemon=True,
            name="repro-attempt-worker",
        )
        process.start()
        # The worker now holds the only other copy of its pipe end;
        # closing the parent's duplicate makes a dead worker observable
        # as EOF instead of a silent hang.
        theirs.close()
        return process, ours

    def pending(self) -> set[int]:
        return set(self._inflight)

    def submit(self, task: AttemptTask) -> None:
        if task.ii in self._inflight:
            raise SchedulingError(f"II={task.ii} is already in flight")
        entry = self._idle.pop() if self._idle else self._spawn()
        try:
            entry[1].send(task)
        except OSError:
            # A warm worker died between searches; replace it.
            entry[0].join()
            entry = self._spawn()
            entry[1].send(task)
        self._inflight[task.ii] = entry

    def wait(self, needed_ii: int) -> list[AttemptResult]:
        if needed_ii not in self._inflight:
            raise SchedulingError(
                f"attempt runner asked to wait on II={needed_ii}, "
                "which is not in flight"
            )
        by_conn = {conn: ii for ii, (_, conn) in self._inflight.items()}
        ready = multiprocessing.connection.wait(list(by_conn))
        results: list[AttemptResult] = []
        for conn in ready:
            ii = by_conn[conn]
            entry = self._inflight.pop(ii)
            try:
                payload = entry[1].recv()
            except EOFError:
                entry[0].join()
                raise SchedulingError(
                    f"attempt worker for II={ii} died without a result "
                    f"(exit code {entry[0].exitcode})"
                ) from None
            self._idle.append(entry)
            if isinstance(payload, BaseException):
                raise payload
            results.append(payload)
        return sorted(results, key=lambda result: result.ii)

    def cancel(self, iis) -> int:
        revoked = 0
        for ii in list(iis):
            entry = self._inflight.pop(ii, None)
            if entry is None:
                continue
            process, conn = entry
            process.terminate()
            conn.close()
            process.join()
            revoked += 1
        return revoked

    def finish(self) -> None:
        # Idle workers stay warm for the suite's next search.
        self.cancel(list(self._inflight))

    def close(self) -> None:
        self.finish()
        for process, conn in self._idle:
            # A plain conn.close() need not deliver EOF: workers forked
            # later inherit duplicates of this pipe's parent end, so the
            # idle worker's recv could outlive us.  Idle workers hold no
            # state — terminate them.
            process.terminate()
            conn.close()
            process.join()
        self._idle = []


_SHARED_RUNNER: PoolAttemptRunner | None = None


def _close_shared_runner() -> None:  # pragma: no cover - atexit plumbing
    global _SHARED_RUNNER
    if _SHARED_RUNNER is not None:
        _SHARED_RUNNER.close()
        _SHARED_RUNNER = None


atexit.register(_close_shared_runner)


def default_runner(speculation: int) -> AttemptRunner:
    """The runner a driver uses when none is injected.

    A process-wide :class:`PoolAttemptRunner` is shared across searches
    (suite runs schedule hundreds of loops; the shared runner carries
    the sizing, growing if a later search asks for more workers).
    Inside a daemonic worker of the ``repro.exec`` suite pool, nested
    process creation is impossible — those get the
    :class:`SerialAttemptRunner`, which produces identical results by
    construction.
    """
    global _SHARED_RUNNER
    if speculation <= 1 or multiprocessing.current_process().daemon:
        return SerialAttemptRunner()
    if _SHARED_RUNNER is not None and _SHARED_RUNNER.processes < speculation:
        _SHARED_RUNNER.close()
        _SHARED_RUNNER = None
    if _SHARED_RUNNER is None:
        _SHARED_RUNNER = PoolAttemptRunner(speculation)
    return _SHARED_RUNNER


# ----------------------------------------------------------------------
# The speculative driver
# ----------------------------------------------------------------------


@dataclasses.dataclass
class SearchResult:
    """What one speculative search established.

    ``path`` is the serial-equivalent attempt sequence (the replayed
    policy trajectory over real outcomes) — identical to what the
    serial driver would have executed.  ``executed`` holds *every*
    completed attempt in II order (speculative extras included), each
    entry a ``search_trace`` dict with an ``on_path`` marker.  ``best``
    is the lowest feasible II on the path, or ``None``.
    """

    best: FeasibleState | None
    path: list[AttemptResult]
    executed: list[dict]
    stats: SearchStats


class SpeculativeSearchDriver:
    """Races K candidate IIs of one search over an attempt runner.

    Args:
        machine: target configuration.
        params: algorithm parameters; ``params.make_search_policy()``
            drives both the committed path and the frontier prediction.
        speculation: frontier width K (1 degenerates to the serial
            search executed through the runner).
        runner: attempt executor; defaults to :func:`default_runner`.
        cache: per-attempt result cache — a
            :class:`~repro.exec.cache.ResultCache`, ``True``/``False``,
            or ``None`` to follow the environment (the same contract as
            :func:`repro.exec.cache.resolve_cache`).
        tracer: observability sink (see :mod:`repro.obs`); with a
            recording tracer the driver emits the race ledger
            (``race.launch`` / ``race.verify`` / ``race.cancel`` /
            ``race.commit`` instants), asks workers for per-attempt
            traces and merges them back, and synthesizes a span for
            every cancelled attempt — so the merged trace carries
            exactly one ``attempt`` span per launched attempt.
    """

    def __init__(
        self,
        machine: MachineConfig,
        params: MirsParams,
        speculation: int,
        runner: AttemptRunner | None = None,
        cache=None,
        tracer: Tracer = NULL_TRACER,
    ):
        from repro.exec.cache import resolve_cache

        self.machine = machine
        self.params = params
        self.speculation = max(1, speculation)
        self.runner = runner if runner is not None else default_runner(
            self.speculation
        )
        self.cache = resolve_cache(cache)
        self.tracer = tracer

    # ------------------------------------------------------------------

    def search(
        self,
        graph: DependenceGraph,
        priorities: dict[int, float],
        mii: int,
        limit: int,
    ) -> SearchResult:
        """Run one full II search for ``graph``; see the module docstring."""
        from repro.exec.hashing import canonical_graph, stable_hash

        tracer = self.tracer
        trace_on = tracer.enabled
        template = AttemptTask(
            graph=graph,
            machine=self.machine,
            params=self.params,
            ii=mii,
            priorities=priorities,
            graph_hash=stable_hash(canonical_graph(graph)),
            trace=trace_on,
        )
        policy = self.params.make_search_policy()
        completed: dict[int, AttemptResult] = {}
        launched = 0
        cancelled = 0
        cache_hits = 0
        path: list[AttemptResult] = []
        #: Open parent-side span tokens of in-flight attempts; popped
        #: on completion (the worker's own span is merged instead) or
        #: closed with ``cancelled=True`` on revocation.
        tokens: dict[int, object] = {}

        def note_cancelled(iis) -> None:
            if not trace_on:
                return
            for ii in sorted(iis):
                token = tokens.pop(ii, None)
                if token is not None:
                    tracer.end(token, cancelled=True)
                tracer.instant("race.cancel", "race", ii=ii)

        try:
            while True:
                path, attempted, needed = self._replay(
                    policy, completed, mii, limit
                )
                if needed is None:
                    break

                # A completed feasible II retires every strictly-higher
                # in-flight candidate (except the one the path still
                # needs — a traffic jump can place it above a feasible
                # II; revoked IIs may be re-submitted later).
                best_done = min(
                    (
                        result.ii
                        for result in completed.values()
                        if result.outcome.scheduled
                    ),
                    default=None,
                )
                if best_done is not None:
                    losers = {
                        ii
                        for ii in self.runner.pending()
                        if ii > best_done and ii != needed
                    }
                    cancelled += self.runner.cancel(losers)
                    note_cancelled(losers)

                hit_needed = False
                for ii in self._frontier(
                    policy, attempted, needed, completed, mii, limit
                ):
                    if ii in completed or ii in self.runner.pending():
                        continue
                    task = template.with_ii(ii)
                    if self.cache is not None:
                        hit = self.cache.get(task.cache_key())
                        if isinstance(hit, AttemptResult):
                            completed[ii] = hit
                            cache_hits += 1
                            if trace_on:
                                tracer.instant(
                                    "race.cache_hit", "race", ii=ii
                                )
                            if ii == needed:
                                hit_needed = True
                            continue
                    self.runner.submit(task)
                    launched += 1
                    if trace_on:
                        tokens[ii] = tracer.begin("attempt", "race", ii=ii)
                        tracer.instant(
                            "race.launch", "race", ii=ii, needed=needed
                        )
                if hit_needed:
                    continue  # the cache satisfied the anchor: re-replay

                for result in self.runner.wait(needed):
                    completed[result.ii] = result
                    if trace_on:
                        tokens.pop(result.ii, None)
                        tracer.instant(
                            "race.verify", "race",
                            ii=result.ii,
                            kind=result.outcome.kind.value,
                            scheduled=result.outcome.scheduled,
                            seconds=round(result.seconds, 6),
                        )
                        tracer.merge(result.trace)
                    if self.cache is not None:
                        self.cache.put(
                            template.with_ii(result.ii).cache_key(),
                            dataclasses.replace(result, trace=None),
                        )
        finally:
            leftover = self.runner.pending()
            cancelled += self.runner.cancel(leftover)
            note_cancelled(leftover)
            self.runner.finish()

        best: FeasibleState | None = None
        for result in path:
            if result.outcome.scheduled and result.feasible is not None:
                if best is None or result.feasible.ii < best.ii:
                    best = result.feasible
        on_path = {result.ii for result in path}
        executed = [
            dict(
                completed[ii].outcome.as_trace_entry(),
                on_path=ii in on_path,
            )
            for ii in sorted(completed)
        ]
        stats = SearchStats(
            speculation=self.speculation,
            runner=type(self.runner).__name__,
            serial_attempts=len(path),
            executed_attempts=len(completed),
            launched=launched,
            cancelled=cancelled,
            cache_hits=cache_hits,
        )
        if trace_on:
            if best is not None:
                tracer.instant("race.commit", "race", ii=best.ii)
            stats.emit(tracer, prefix="race")
        return SearchResult(
            best=best, path=path, executed=executed, stats=stats
        )

    # ------------------------------------------------------------------

    def _replay(self, policy, completed, mii, limit):
        """Replay the policy over completed outcomes.

        Returns ``(path, attempted, needed)``: the serial-equivalent
        results consumed so far, the II set the replayed policy issued,
        and the first II whose outcome is unknown (``None`` when the
        replay ran the search to completion).
        """
        path: list[AttemptResult] = []
        attempted: set[int] = set()
        ii = policy.first_ii(mii, limit)
        while ii is not None and mii <= ii <= limit and ii not in attempted:
            attempted.add(ii)
            result = completed.get(ii)
            if result is None:
                return path, attempted, ii
            path.append(result)
            ii = policy.next_ii(result.outcome)
        return path, attempted, None

    def _frontier(self, policy, attempted, needed, completed, mii, limit):
        """The next K IIs worth racing, anchored at ``needed``.

        ``policy`` arrives positioned right after the replay requested
        ``needed``; the frontier extends it by feeding a conservative
        synthetic failure (:func:`predicted_failure`) for each unknown
        II — the policy object is discarded and replayed fresh next
        round, so the speculative feeding never contaminates the
        committed path.  Extension stops at a known-feasible completed
        II (the search can only continue below it, and those IIs are
        already attempted) — this bounds executed attempts by the
        serial count plus K-1.
        """
        frontier = [needed]
        ii = needed
        while len(frontier) < self.speculation:
            outcome = (
                completed[ii].outcome
                if ii in completed
                else predicted_failure(ii)
            )
            if outcome.scheduled:
                break
            ii = policy.next_ii(outcome)
            if ii is None or not (mii <= ii <= limit) or ii in attempted:
                break
            attempted.add(ii)
            if ii not in completed:
                frontier.append(ii)
        return frontier
