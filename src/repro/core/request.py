"""One resolution path for *what* to schedule and *how* to execute it.

Historically every entry point grew its own keyword sprawl: the CLI,
:func:`repro.eval.runner.schedule_suite`, the seven experiment drivers
and :func:`repro.exec.engine.make_engine` each accepted some subset of
``scheduler=``, ``params=``, ``search=``, ``jobs=``, ``cache=`` and
``executor=``, folding them together in slightly different orders.  The
speculative II search (``speculation=``) would have been the seventh
such kwarg on every signature.

Two small dataclasses replace the sprawl:

* :class:`ScheduleRequest` — the *scheduling problem* side: which
  scheduler, with which parameters, searching IIs how and how wide.
  ``resolved_params()`` folds ``search``/``speculation`` into a single
  :class:`~repro.core.params.MirsParams`, so cache keys, worker
  processes and the CLI all agree on one canonical parameter set.
* :class:`SessionConfig` — the *execution session* side: worker count,
  result cache and progress callback, or a pre-built
  :class:`~repro.exec.engine.SuiteExecutor`.  ``make_executor()`` is
  memoized, so one session threaded through many driver calls keeps a
  single executor whose stats accumulate.

The old keywords are gone: :func:`fold_legacy_request` /
:func:`fold_legacy_session` now raise :class:`~repro.errors.ConfigError`
with a migration hint whenever one is passed.  (They warned with a
:class:`DeprecationWarning` for two releases first.)
"""

from __future__ import annotations

import dataclasses

from repro.core.params import MirsParams
from repro.errors import ConfigError

#: Sentinel distinguishing "keyword not passed" from an explicit
#: ``None`` (both ``params=None`` and ``jobs=None`` were meaningful
#: values under the legacy signatures).
_UNSET = object()


@dataclasses.dataclass(frozen=True)
class ScheduleRequest:
    """What to schedule: scheduler, parameters, II search, speculation.

    ``search`` and ``speculation`` are conveniences layered over
    ``params`` (they fold into ``ii_search``/``speculation`` fields via
    :meth:`resolved_params`); specifying a field both ways is a
    :class:`~repro.errors.ConfigError` rather than a silent override.
    """

    scheduler: str = "mirsc"
    params: MirsParams | None = None
    #: II-search policy (registered name or policy instance); folded
    #: into ``params.ii_search`` by :meth:`resolved_params`.
    search: object | None = None
    #: Speculative II-search width K; folded into ``params.speculation``.
    speculation: int | None = None
    #: Structured-trace sink (see :func:`repro.obs.resolve_tracer`):
    #: a :class:`~repro.obs.Tracer`, ``True`` (process-global tracer),
    #: ``False`` (off) or ``None`` (follow ``REPRO_TRACE``).  Purely
    #: diagnostic: excluded from ``resolved_params()`` and therefore
    #: from every cache key, and never pickled to worker processes
    #: (the executor ships a plain ``True``/``False`` instead).
    trace: object = None

    @classmethod
    def coerce(cls, value) -> "ScheduleRequest":
        """Accept the shorthands callers naturally reach for.

        ``None`` → defaults; a string → scheduler name (the historical
        third positional of ``schedule_suite``); a
        :class:`~repro.core.params.MirsParams` → parameters for the
        default scheduler; a request passes through unchanged.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(scheduler=value)
        if isinstance(value, MirsParams):
            return cls(params=value)
        raise ConfigError(
            f"cannot interpret {value!r} as a ScheduleRequest "
            "(expected None, a scheduler name, MirsParams or a request)"
        )

    def resolved_params(self) -> MirsParams | None:
        """Fold ``search``/``speculation`` into one parameter set.

        Returns ``None`` when nothing was specified, preserving the
        ``params is None`` ≡ ``MirsParams()`` convention of the cache
        keys.
        """
        params = self.params
        if self.search is not None:
            existing = params is not None and params.ii_search != "linear"
            if existing and params.ii_search != self.search:
                raise ConfigError(
                    "ScheduleRequest: ii_search given both in params "
                    "and as search="
                )
            params = dataclasses.replace(
                params or MirsParams(), ii_search=self.search
            )
        if self.speculation is not None:
            if (
                params is not None
                and params.speculation is not None
                and params.speculation != self.speculation
            ):
                raise ConfigError(
                    "ScheduleRequest: speculation given both in params "
                    "and as speculation="
                )
            params = dataclasses.replace(
                params or MirsParams(), speculation=self.speculation
            )
        return params

    def make_scheduler(self, machine, *, verify: bool = True, strict: bool = True):
        """Instantiate the requested scheduler for one machine."""
        # Imported lazily: worker processes import this module before
        # they know which scheduler they will run, and the baseline
        # import is pointless for MIRS-C-only sessions.
        from repro.baseline.noniterative import NonIterativeScheduler
        from repro.core.mirsc import MirsC

        params = self.resolved_params()
        if self.scheduler == "mirsc":
            return MirsC(
                machine, params=params, verify=verify, strict=strict,
                tracer=self.trace,
            )
        if self.scheduler == "baseline":
            # The baseline has no attempt machinery worth tracing.
            return NonIterativeScheduler(machine, params=params)
        if self.scheduler == "smt":
            from repro.smt.scheduler import SmtScheduler

            return SmtScheduler(
                machine, params=params, verify=verify, strict=strict,
                tracer=self.trace,
            )
        raise ValueError(f"unknown scheduler {self.scheduler!r}")


@dataclasses.dataclass
class SessionConfig:
    """How to execute: workers, cache, progress — one executor per session.

    Mutable on purpose: :meth:`make_executor` memoizes the built
    :class:`~repro.exec.engine.SuiteExecutor` in ``executor``, so a
    session object threaded through several driver calls accumulates
    stats in a single place (exactly like passing one executor
    everywhere used to).
    """

    jobs: int | None = None
    cache: object = None
    progress: object = None
    executor: object = None

    @classmethod
    def coerce(cls, value) -> "SessionConfig":
        """Accept ``None``, a session, or a bare ``SuiteExecutor``."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        from repro.exec.engine import SuiteExecutor

        if isinstance(value, SuiteExecutor):
            return cls(executor=value)
        raise ConfigError(
            f"cannot interpret {value!r} as a SessionConfig "
            "(expected None, a SessionConfig or a SuiteExecutor)"
        )

    def make_executor(self):
        """The session's executor (built once, then reused)."""
        if self.executor is None:
            from repro.exec.engine import SuiteExecutor

            self.executor = SuiteExecutor(
                jobs=self.jobs, cache=self.cache, progress=self.progress
            )
        return self.executor


# ----------------------------------------------------------------------
# Removed legacy keywords
# ----------------------------------------------------------------------


def _reject_legacy(api: str, names, replacement: str) -> None:
    raise ConfigError(
        f"{api}: keyword(s) {', '.join(sorted(names))} were removed "
        f"after a deprecation period; pass {replacement} instead "
        f"(e.g. {api}(..., request=ScheduleRequest(search='linear'), "
        "session=SessionConfig(jobs=4)))"
    )


def fold_legacy_request(
    api: str,
    request,
    *,
    scheduler=_UNSET,
    params=_UNSET,
    search=_UNSET,
    speculation=_UNSET,
) -> ScheduleRequest:
    """Resolve a ``request`` argument; removed legacy kwargs raise."""
    legacy = {
        name: value
        for name, value in (
            ("scheduler", scheduler),
            ("params", params),
            ("search", search),
            ("speculation", speculation),
        )
        if value is not _UNSET
    }
    if legacy:
        _reject_legacy(
            api, legacy,
            "a ScheduleRequest (scheduler/params/search/speculation)",
        )
    return ScheduleRequest.coerce(request)


def fold_legacy_session(
    api: str,
    session,
    *,
    jobs=_UNSET,
    cache=_UNSET,
    progress=_UNSET,
    executor=_UNSET,
) -> SessionConfig:
    """Resolve a ``session`` argument; removed legacy kwargs raise."""
    legacy = {
        name: value
        for name, value in (
            ("jobs", jobs),
            ("cache", cache),
            ("progress", progress),
            ("executor", executor),
        )
        if value is not _UNSET
    }
    if legacy:
        _reject_legacy(
            api, legacy,
            "a SessionConfig (jobs/cache/progress/executor)",
        )
    return SessionConfig.coerce(session)
