"""The paper's contribution: the MIRS-C scheduler and its support types."""

from repro.core.mirsc import Mirs, MirsC
from repro.core.params import MirsParams
from repro.core.priority import PriorityList
from repro.core.result import ScheduleResult
from repro.core.search import (
    AttemptOutcome,
    BisectionSearch,
    GeometricPressureSearch,
    IISearchPolicy,
    LinearSearch,
    OutcomeKind,
    POLICIES,
    make_policy,
)
from repro.core.state import SchedulerState, SchedulerStats
from repro.core.verify import verify_schedule

__all__ = [
    "AttemptOutcome",
    "BisectionSearch",
    "GeometricPressureSearch",
    "IISearchPolicy",
    "LinearSearch",
    "Mirs",
    "MirsC",
    "MirsParams",
    "OutcomeKind",
    "POLICIES",
    "PriorityList",
    "ScheduleResult",
    "SchedulerState",
    "SchedulerStats",
    "make_policy",
    "verify_schedule",
]
