"""The paper's contribution: the MIRS-C scheduler and its support types."""

from repro.core.mirsc import Mirs, MirsC
from repro.core.params import MirsParams
from repro.core.priority import PriorityList
from repro.core.result import ScheduleResult
from repro.core.state import SchedulerState, SchedulerStats
from repro.core.verify import verify_schedule

__all__ = [
    "Mirs",
    "MirsC",
    "MirsParams",
    "PriorityList",
    "ScheduleResult",
    "SchedulerState",
    "SchedulerStats",
    "verify_schedule",
]
