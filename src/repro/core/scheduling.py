"""The per-node scheduling step (Figure 3 of the paper).

``schedule_node`` computes EarlyStart, LateStart and the search direction,
probes for a free slot, and - failing that - applies the
``Forcing_and_Ejection`` heuristic (Section 3.2.2): the node is forced at
``max(EarlyStart, Prev_Cycle + 1)`` (or the mirror-image cycle for
backward searches) and the conflicting operations are ejected.

Unlike earlier iterative schedulers [6, 16, 28], which eject *every*
operation involved in a resource conflict, MIRS-C ejects only **one** per
conflict - the operation that was placed into the partial schedule first.
Dependence-violating neighbours of the forced node are then ejected as
well.  (``MirsParams.eject_all`` restores the eject-everything policy for
the ablation benchmark.)

Every ``schedule.place`` / ``state.eject_node`` below emits a placement
event that the state's incremental
:class:`~repro.schedule.pressure.PressureTracker` consumes, so the
register-pressure check that follows each placement reads up-to-date
MaxLive/critical-row state without any recomputation here.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.core.state import SchedulerState
from repro.graph.ddg import Node
from repro.schedule.slots import (
    dependence_window,
    find_free_slot,
    forced_cycle,
    violates_dependences,
)


def schedule_node(state: SchedulerState, node: Node, cluster: int) -> bool:
    """Place ``node`` into ``cluster``, ejecting others if necessary.

    Returns ``False`` when the node vanished from the graph as a side
    effect of the ejections (possible for moves whose producer was
    evicted); the caller then re-plans.
    """
    window = dependence_window(
        state.graph,
        state.schedule,
        node,
        state.machine,
        distance_gauge=state.params.distance_gauge if node.is_spill else None,
    )
    src_cluster = node.src_cluster if node.is_move else None
    slot = find_free_slot(
        state.schedule, node, cluster, window, src_cluster=src_cluster
    )
    if slot is not None:
        state.schedule.place(node, cluster, slot, src_cluster=src_cluster)
        state.stats.nodes_scheduled += 1
        return True
    return _force_and_eject(state, node, cluster, window, src_cluster)


def _force_and_eject(
    state: SchedulerState,
    node: Node,
    cluster: int,
    window,
    src_cluster: int | None,
) -> bool:
    """The Forcing_and_Ejection heuristic."""
    schedule = state.schedule
    mrt = schedule.mrt
    if not mrt.feasible_at_ii(node, cluster, src_cluster=src_cluster):
        raise SchedulingError(
            f"operation {node.name} cannot execute at II={state.ii}: its "
            "reservation table collides with itself (II below occupancy)"
        )
    cycle = forced_cycle(schedule, node, window)
    state.stats.forced_placements += 1

    evictions = 0
    while not mrt.can_place(node, cluster, cycle, src_cluster=src_cluster):
        victims = mrt.blocking_nodes(
            node, cluster, cycle, src_cluster=src_cluster
        )
        if not victims:
            raise SchedulingError(
                f"no free slot and no victims for {node.name} at "
                f"cluster {cluster} cycle {cycle}"
            )
        if state.params.eject_all:
            chosen = list(victims)
        else:
            # The paper's policy: evict only the operation that was
            # placed in the partial schedule first.
            chosen = [min(victims, key=schedule.placement_seq)]
        for victim in chosen:
            if state.schedule.is_scheduled(victim):
                state.eject_node(victim)
        evictions += len(chosen)
        if node.id not in state.graph:
            return False  # the node was removed while ejecting
        if evictions > state.params.max_force_evictions:
            raise SchedulingError(
                f"eviction storm while forcing {node.name}; "
                "the partial schedule is livelocked"
            )

    schedule.place(node, cluster, cycle, src_cluster=src_cluster)
    state.stats.nodes_scheduled += 1

    # Eject every scheduled neighbour whose dependence the forced
    # placement violates.
    for offender in violates_dependences(
        state.graph, schedule, node.id, state.machine
    ):
        if state.schedule.is_scheduled(offender):
            state.eject_node(offender)
    return node.id in state.graph
