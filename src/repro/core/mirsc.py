"""MIRS-C: Modulo scheduling with Integrated Register Spilling and
Cluster assignment - the paper's contribution (Figure 4).

The driver below follows the paper's skeleton step by step::

    Procedure MIRS-C (G) {
      S = empty; II = MII;
      Priority_List = Order_HRMS(G);
      WHILE (!Priority_List.empty()) {
    (1)   Budget = Budget_Ratio * Number_Nodes(G);
    (2)   U = Priority_List.highest_priority();
    (C1)  i = Select_Cluster(G, S, U);
    (C2)  WHILE (Need_Move(G, S, U, i)) {
            move = Add_Move(G, U, i); Schedule(G, S, move, i); }
    (3)   Schedule(G, S, U, i);
    (4)   IF (Priority_List.empty()) Register_Allocation(G, S);
    (5)   Check_and_Insert_Spill(G, S, Priority_List);
    (6)   IF (Restart_Schedule(G, Budget)) {
            Re_Initialize(II++, S, Priority_List); GOTO (1); }
          Budget--;
      }
    (7) Print(II, S);
    }

On a single-cluster machine steps C1/C2 degenerate (the cluster is always
0 and no moves are ever needed) and the algorithm *is* MIRS [33], the
non-clustered variant - exposed as :class:`Mirs` for clarity.
"""

from __future__ import annotations

import dataclasses
import time

from repro.errors import ConvergenceError
from repro.cluster.moves import add_move, next_needed_move
from repro.cluster.selection import select_cluster
from repro.core.params import MirsParams, max_ii_for
from repro.core.result import ScheduleResult
from repro.core.scheduling import schedule_node
from repro.core.search import AttemptOutcome, OutcomeKind
from repro.core.state import SchedulerState, SchedulerStats
from repro.core.verify import verify_schedule
from repro.graph.ddg import DepKind, DependenceGraph
from repro.graph.latency import edge_latency
from repro.graph.mii import compute_mii
from repro.machine.config import MachineConfig
from repro.machine.resources import OpKind
from repro.order.hrms import hrms_order
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.schedule.regalloc import allocate_registers
from repro.spill.heuristics import check_and_insert_spill
from repro.errors import SchedulingError


class MirsC:
    """The MIRS-C scheduler.

    Args:
        machine: target configuration.
        params: algorithm parameters (paper defaults when omitted).
        verify: re-validate every produced schedule (cheap; on by default).
        strict: with the paper's parameters MIRS-C always converges, so
            hitting the II cap raises :class:`ConvergenceError`; pass
            ``strict=False`` (as the parameter-ablation benchmarks do) to
            get a ``converged=False`` result instead.
        search: II-search policy — a registered name (``"linear"``,
            ``"geometric"``, ``"bisection"``) or an
            :class:`~repro.core.search.IISearchPolicy` instance.
            Overrides ``params.ii_search``; the default is the paper's
            linear ladder.
    """

    def __init__(
        self,
        machine: MachineConfig,
        params: MirsParams | None = None,
        verify: bool = True,
        strict: bool = True,
        search=None,
    ):
        self.machine = machine
        self.params = params or MirsParams()
        if search is not None:
            self.params = dataclasses.replace(self.params, ii_search=search)
        self.verify = verify
        self.strict = strict
        self._bound_churn = self.params.effective_bound_eject_churn()

    # ------------------------------------------------------------------

    def schedule(self, graph: DependenceGraph) -> ScheduleResult:
        """Schedule one loop; always converges (spilling guarantees it).

        The II ladder is driven by the configured
        :class:`~repro.core.search.IISearchPolicy`: each attempt's
        :class:`~repro.core.search.AttemptOutcome` is fed back to the
        policy, which names the next II (or ends the search).  The
        lowest II whose attempt scheduled wins — its verified state is
        retained even when the policy goes on probing (bisection), so
        the accepted schedule never needs a re-run.  The full
        ``(ii, outcome)`` trace lands in ``result.stats.search_trace``.
        """
        started = time.perf_counter()
        pristine = graph.clone()
        ordering = hrms_order(pristine, self.machine)
        mii = compute_mii(pristine, self.machine)
        limit = max_ii_for(mii, len(pristine), self.params)
        policy = self.params.make_search_policy()

        best: SchedulerState | None = None
        trace: list[AttemptOutcome] = []
        attempted: set[int] = set()
        ii = policy.first_ii(mii, limit)
        while ii is not None and mii <= ii <= limit and ii not in attempted:
            attempted.add(ii)
            state, outcome = self._attempt(
                pristine.clone(), ii, ordering.priority
            )
            trace.append(outcome)
            if state is not None and (best is None or state.ii < best.ii):
                best = state
            ii = policy.next_ii(outcome)

        if best is not None:
            # restarts counts the attempts that did not produce the
            # accepted schedule (= failed attempts under linear search).
            return self._finalize(
                best, mii, len(trace) - 1, time.perf_counter() - started,
                trace,
            )
        if self.strict:
            raise ConvergenceError(
                f"MIRS-C failed to schedule {graph.name} within II <= {limit}",
                last_ii=trace[-1].ii if trace else mii,
            )
        return ScheduleResult(
            loop=pristine.name,
            machine=self.machine,
            converged=False,
            ii=limit,
            mii=mii,
            restarts=len(trace),
            scheduling_seconds=time.perf_counter() - started,
            stats=SchedulerStats(
                search_trace=[o.as_trace_entry() for o in trace]
            ),
            trip_count=pristine.trip_count,
        )

    # ------------------------------------------------------------------

    def _pressure_deficit(self, state: SchedulerState) -> dict[int, int]:
        """Per-cluster ``MaxLive - AR`` (positive entries only)."""
        available = state.machine.cluster.registers
        if available is None:
            return {}
        return {
            cluster: live - available
            for cluster, live in sorted(state.pressure.max_live_all().items())
            if live > available
        }

    def _outcome(
        self, state: SchedulerState, kind: OutcomeKind, final_rounds: int = 0
    ) -> AttemptOutcome:
        suggested = state.ii + 1
        if kind is OutcomeKind.TRAFFIC_INFEASIBLE:
            suggested = state.suggested_restart_ii()
        return AttemptOutcome(
            ii=state.ii,
            kind=kind,
            pressure_deficit=(
                {} if kind is OutcomeKind.SCHEDULED
                else self._pressure_deficit(state)
            ),
            registers_available=state.machine.cluster.registers,
            budget_left=state.budget,
            suggested_ii=suggested,
            final_rounds=final_rounds,
        )

    def _attempt(
        self,
        graph: DependenceGraph,
        ii: int,
        priorities: dict[int, float],
    ) -> tuple[SchedulerState | None, AttemptOutcome]:
        """One scheduling attempt at a fixed II.

        Returns ``(state, outcome)``; ``state`` is ``None`` when the
        attempt failed, and ``outcome`` records which of the step-(6)
        restart conditions fired (plus the measured pressure deficit).
        """
        state = SchedulerState(graph, self.machine, ii, priorities, self.params)
        final_rounds = 0
        max_final_rounds = self.params.final_round_cap_for(
            self.machine.clusters, len(graph)
        )
        placements_since_check = 0

        while True:
            if state.pl.empty():
                # Steps (4)+(5) in the drained regime: true register
                # allocation, then spill/balance/eject until it fits.
                acted = self._checked_spill(state, final=True)
                if state.pl.empty():
                    if self._fits_registers(state):
                        return state, self._outcome(
                            state, OutcomeKind.SCHEDULED, final_rounds
                        )
                    final_rounds += 1
                    if not acted:
                        return None, self._outcome(
                            state,
                            OutcomeKind.REGISTER_INFEASIBLE,
                            final_rounds,
                        )
                    if final_rounds > max_final_rounds:
                        return None, self._outcome(
                            state, OutcomeKind.ROUND_CAP, final_rounds
                        )
                    continue
                if self._churned_out(state, max_final_rounds):
                    return None, self._outcome(
                        state, OutcomeKind.ROUND_CAP, final_rounds
                    )

            # Step (6): Restart_Schedule conditions.
            if state.budget <= 0:
                return None, self._outcome(
                    state, OutcomeKind.BUDGET_EXHAUSTED, final_rounds
                )
            if state.memory_traffic_infeasible():
                return None, self._outcome(
                    state, OutcomeKind.TRAFFIC_INFEASIBLE, final_rounds
                )

            # Step (2): pick the highest-priority node.
            node_id = state.pl.pop()
            if node_id not in state.graph:
                continue  # removed move still queued
            if state.schedule.is_scheduled(node_id):
                continue
            node = state.graph.node(node_id)

            if node.is_move:
                self._reschedule_move(state, node_id)
                state.budget -= 1
                continue

            # Step (C1): cluster selection.
            cluster = select_cluster(state, node)

            # Step (C2): insert and schedule the needed moves.
            guard = 0
            while True:
                plan = next_needed_move(state, node, cluster)
                if plan is None:
                    break
                move = add_move(state, plan)
                schedule_node(state, move, plan.dst_cluster)
                guard += 1
                if guard > 4 * self.machine.clusters + 8:
                    # Communication livelock: burn budget so the restart
                    # rule eventually fires.
                    state.budget -= guard
                    break

            # Step (3): schedule U itself.
            schedule_node(state, node, cluster)

            # Steps (4)+(5): register pressure check (gauged regime).
            placements_since_check += 1
            if (
                placements_since_check >= self.params.spill_check_interval
                or state.pl.empty()
            ):
                placements_since_check = 0
                self._checked_spill(state, final=False)
                if self._churned_out(state, max_final_rounds):
                    return None, self._outcome(
                        state, OutcomeKind.ROUND_CAP, final_rounds
                    )
            state.budget -= 1

    # ------------------------------------------------------------------

    def _checked_spill(self, state: SchedulerState, *, final: bool) -> bool:
        """Run the spill check, tracking eject-only churn when bounded.

        With ``bound_eject_churn`` off (the paper-exact default) this is
        exactly ``check_and_insert_spill``.  With it on, consecutive
        checks whose only action was a critical-row ejection are
        counted: an eject-and-replace cycle makes no measurable
        progress (no spill, no balance move — the victim goes straight
        back to the slot pool), yet the paper's driver bounds it only
        by the restart budget, which takes thousands of placements to
        drain.  The counter resets whenever a check spills or balances.
        """
        if not self._bound_churn:
            return check_and_insert_spill(state, final=final)
        stats = state.stats
        progress_before = (
            stats.spill_stores_added + stats.spill_loads_added
            + stats.invariant_spills + stats.balance_shifts
        )
        ejections_before = stats.ejections
        acted = check_and_insert_spill(state, final=final)
        if acted:
            progressed = (
                stats.spill_stores_added + stats.spill_loads_added
                + stats.invariant_spills + stats.balance_shifts
            ) != progress_before
            if progressed:
                state.eject_churn_run = 0
            elif stats.ejections > ejections_before:
                state.eject_churn_run += 1
        return acted

    def _churned_out(self, state: SchedulerState, cap: int) -> bool:
        """True when bounded eject-only churn exceeded the round cap."""
        return self._bound_churn and state.eject_churn_run > cap

    # ------------------------------------------------------------------

    def _reschedule_move(self, state: SchedulerState, move_id: int) -> None:
        """Re-place a move that was ejected by a resource conflict.

        The paper re-validates communication decisions when operations
        are picked up again: a move whose endpoints changed or vanished
        is removed, and the ordinary Need_Move machinery recreates it
        later if it is still required.
        """
        move = state.graph.node(move_id)
        consumers = [
            e.dst
            for e in state.graph.out_edges(move_id)
            if e.kind is DepKind.REG and state.schedule.is_scheduled(e.dst)
        ]
        if not consumers:
            state.remove_move(move_id)
            return

        # The value must arrive where the consumer *reads* it: a consumer
        # that is itself a move (a chained communication) reads in its
        # declared source cluster, not in the cluster it executes in.
        def read_cluster(consumer_id: int) -> int:
            consumer = state.graph.node(consumer_id)
            if consumer.is_move and consumer.src_cluster is not None:
                return consumer.src_cluster
            return state.schedule.cluster(consumer_id)

        dst_cluster = read_cluster(consumers[0])
        # One move serves one destination cluster.  Consumers re-placed
        # into *other* clusters while this move sat unscheduled would be
        # silently left reading cross-cluster by whatever is decided
        # below (removal reconnects them straight to the producer);
        # eject them instead, so the ordinary Need_Move machinery
        # re-creates their communication when they are picked up again.
        # (Surfaced by the paper-scale suite: reduction loops on the
        # clustered machines.)
        for consumer_id in consumers[1:]:
            if state.schedule.is_scheduled(consumer_id) and (
                read_cluster(consumer_id) != dst_cluster
            ):
                state.eject_node(consumer_id)
        if move.move_of_invariant is None:
            producers = [
                e.src
                for e in state.graph.in_edges(move_id)
                if e.kind is DepKind.REG
            ]
            if not producers or not state.schedule.is_scheduled(producers[0]):
                state.remove_move(move_id)
                return
            src_cluster = state.schedule.cluster(producers[0])
            if src_cluster == dst_cluster:
                # Removal reconnects the (scheduled) consumers straight
                # to the (scheduled) producer; while the move sat off
                # schedule its chain imposed no timing constraint, so
                # the merged direct edge may be violated at the current
                # placements.  Eject such consumers - they re-place
                # against the restored dependence.  (Also surfaced by
                # the paper-scale suite.)
                state.remove_move(move_id)
                self._eject_violated_consumers(
                    state, producers[0], consumers
                )
                return
            move.src_cluster = src_cluster
        schedule_node(state, move, dst_cluster)

    def _eject_violated_consumers(
        self, state: SchedulerState, producer: int, consumers: list[int]
    ) -> None:
        """Eject scheduled consumers whose direct edge from ``producer``
        is violated (used after a move removal merges edges between
        scheduled endpoints)."""
        schedule = state.schedule
        if not schedule.is_scheduled(producer):
            return
        start = schedule.time(producer)
        ii = state.ii
        for consumer_id in dict.fromkeys(consumers):
            if consumer_id == producer:
                continue
            if not schedule.is_scheduled(consumer_id):
                continue
            consumer_time = schedule.time(consumer_id)
            for edge in state.graph.out_edges(producer):
                if edge.dst != consumer_id:
                    continue
                latency = edge_latency(state.graph, edge, state.machine)
                if consumer_time - start - latency + ii * edge.distance < 0:
                    state.eject_node(consumer_id)
                    break

    # ------------------------------------------------------------------

    def _fits_registers(self, state: SchedulerState) -> bool:
        available = state.machine.cluster.registers
        if available is None:
            return True
        # MaxLive is a lower bound on the allocation (the colouring
        # never beats it), so an over-budget cluster fails without
        # running the allocator; the exact colouring only arbitrates the
        # fitting side (footnote 2: MaxLive occasionally underestimates).
        if any(
            live > available
            for live in state.pressure.max_live_all().values()
        ):
            return False
        if state.colouring is not None:
            # Incremental path: per-cluster counts from the engine's
            # caches (only clusters whose lifetimes changed recolour).
            return all(
                used <= available
                for used in state.colouring.registers_used_all().values()
            )
        allocations = allocate_registers(
            state.graph,
            state.schedule,
            state.machine,
            state.pressure,
            spilled_invariants=state.spilled_invariants,
        )
        return all(
            alloc.registers_used <= available
            for alloc in allocations.values()
        )

    def _finalize(
        self,
        state: SchedulerState,
        mii: int,
        restarts: int,
        elapsed: float,
        trace: list[AttemptOutcome] | None = None,
    ) -> ScheduleResult:
        graph = state.graph
        schedule = state.schedule
        if trace is not None:
            state.stats.search_trace = [o.as_trace_entry() for o in trace]
        # Batch role: the result is summarised with a from-scratch
        # analysis (and the tracker stops observing the finished graph).
        state.pressure.detach()
        analysis = LifetimeAnalysis(
            graph, schedule, state.machine,
            spilled_invariants=state.spilled_invariants,
        )
        allocations = allocate_registers(
            graph, schedule, state.machine, analysis,
            spilled_invariants=state.spilled_invariants,
        )
        times = {n: schedule.time(n) for n in schedule.scheduled_ids()}
        clusters = {n: schedule.cluster(n) for n in schedule.scheduled_ids()}
        register_usage = {
            c: a.registers_used for c, a in allocations.items()
        }
        result = ScheduleResult(
            loop=graph.name,
            machine=state.machine,
            converged=True,
            ii=state.ii,
            mii=mii,
            times=times,
            clusters=clusters,
            register_usage=register_usage,
            max_live={
                c: analysis.max_live(c)
                for c in range(state.machine.clusters)
            },
            memory_traffic=state.memory_operation_count(),
            spill_operations=sum(
                1 for n in graph.nodes() if n.is_spill
            ),
            move_operations=graph.count_kind(OpKind.MOVE),
            stage_count=max(1, schedule.stage_count()),
            restarts=restarts,
            scheduling_seconds=elapsed,
            stats=state.stats,
            graph=graph,
            trip_count=graph.trip_count,
        )
        if self.verify:
            violations = verify_schedule(
                graph,
                state.machine,
                state.ii,
                times,
                clusters,
                register_usage,
            )
            if violations:
                raise SchedulingError(
                    f"MIRS-C produced an invalid schedule for {graph.name}: "
                    + "; ".join(violations[:5])
                )
        return result


class Mirs(MirsC):
    """MIRS - the non-clustered special case of MIRS-C [33].

    On a single-cluster machine MIRS-C's cluster steps are inert, so MIRS
    is implemented as MIRS-C restricted to ``clusters == 1``; constructing
    it with a clustered machine is an error.
    """

    def __init__(
        self,
        machine: MachineConfig,
        params: MirsParams | None = None,
        verify: bool = True,
        strict: bool = True,
        search=None,
    ):
        if machine.clusters != 1:
            raise SchedulingError(
                "Mirs targets unified (single-cluster) machines; "
                "use MirsC for clustered configurations"
            )
        super().__init__(
            machine, params=params, verify=verify, strict=strict,
            search=search,
        )
