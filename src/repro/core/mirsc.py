"""MIRS-C: Modulo scheduling with Integrated Register Spilling and
Cluster assignment - the paper's contribution (Figure 4).

The driver below follows the paper's skeleton step by step::

    Procedure MIRS-C (G) {
      S = empty; II = MII;
      Priority_List = Order_HRMS(G);
      WHILE (!Priority_List.empty()) {
    (1)   Budget = Budget_Ratio * Number_Nodes(G);
    (2)   U = Priority_List.highest_priority();
    (C1)  i = Select_Cluster(G, S, U);
    (C2)  WHILE (Need_Move(G, S, U, i)) {
            move = Add_Move(G, U, i); Schedule(G, S, move, i); }
    (3)   Schedule(G, S, U, i);
    (4)   IF (Priority_List.empty()) Register_Allocation(G, S);
    (5)   Check_and_Insert_Spill(G, S, Priority_List);
    (6)   IF (Restart_Schedule(G, Budget)) {
            Re_Initialize(II++, S, Priority_List); GOTO (1); }
          Budget--;
      }
    (7) Print(II, S);
    }

The fixed-II inner loop (steps (1)-(6)) lives in
:class:`repro.core.attempts.AttemptEngine`; this class drives the II
search over it — serially (the paper's ladder, or any registered
:class:`~repro.core.search.IISearchPolicy`), or speculatively racing K
candidate IIs over a process pool
(:class:`~repro.core.attempts.SpeculativeSearchDriver`) with
bit-identical committed results.

On a single-cluster machine steps C1/C2 degenerate (the cluster is always
0 and no moves are ever needed) and the algorithm *is* MIRS [33], the
non-clustered variant - exposed as :class:`Mirs` for clarity.
"""

from __future__ import annotations

import dataclasses
import time

from repro.errors import ConvergenceError
from repro.core.attempts import (
    AttemptEngine,
    FeasibleState,
    SpeculativeSearchDriver,
)
from repro.core.params import MirsParams, max_ii_for
from repro.core.result import ScheduleResult
from repro.core.search import AttemptOutcome
from repro.core.state import SchedulerState, SchedulerStats
from repro.core.verify import verify_schedule
from repro.graph.ddg import DependenceGraph
from repro.graph.mii import compute_mii
from repro.machine.config import MachineConfig
from repro.machine.resources import OpKind
from repro.obs import resolve_tracer
from repro.obs.metrics import SearchStats, outcome_histogram
from repro.order.hrms import hrms_order
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.schedule.regalloc import allocate_registers
from repro.errors import SchedulingError


class MirsC:
    """The MIRS-C scheduler.

    Args:
        machine: target configuration.
        params: algorithm parameters (paper defaults when omitted).
        verify: re-validate every produced schedule (cheap; on by default).
        strict: with the paper's parameters MIRS-C always converges, so
            hitting the II cap raises :class:`ConvergenceError`; pass
            ``strict=False`` (as the parameter-ablation benchmarks do) to
            get a ``converged=False`` result instead.
        search: II-search policy — a registered name (``"linear"``,
            ``"geometric"``, ``"bisection"``) or an
            :class:`~repro.core.search.IISearchPolicy` instance.
            Overrides ``params.ii_search``; the default is the paper's
            linear ladder.
        speculation: speculative II-search width K — overrides
            ``params.speculation`` (``None`` keeps the param's own
            resolution: field, then ``REPRO_SPECULATION``, then the
            serial search).
        tracer: structured-trace sink — a
            :class:`~repro.obs.Tracer`, ``True`` (process-global
            tracer), ``False`` (off, overriding the environment) or
            ``None`` (follow ``REPRO_TRACE``).  See :mod:`repro.obs`.
    """

    def __init__(
        self,
        machine: MachineConfig,
        params: MirsParams | None = None,
        verify: bool = True,
        strict: bool = True,
        search=None,
        speculation: int | None = None,
        tracer=None,
    ):
        self.machine = machine
        self.params = params or MirsParams()
        if search is not None:
            self.params = dataclasses.replace(self.params, ii_search=search)
        if speculation is not None:
            self.params = dataclasses.replace(
                self.params, speculation=speculation
            )
        self.verify = verify
        self.strict = strict
        self.tracer = resolve_tracer(tracer)
        self._engine = AttemptEngine(machine, self.params, tracer=self.tracer)

    # ------------------------------------------------------------------

    def schedule(self, graph: DependenceGraph) -> ScheduleResult:
        """Schedule one loop; always converges (spilling guarantees it).

        The II ladder is driven by the configured
        :class:`~repro.core.search.IISearchPolicy`: each attempt's
        :class:`~repro.core.search.AttemptOutcome` is fed back to the
        policy, which names the next II (or ends the search).  The
        lowest II whose attempt scheduled wins — its verified state is
        retained even when the policy goes on probing (bisection), so
        the accepted schedule never needs a re-run.  The full
        ``(ii, outcome)`` trace lands in ``result.stats.search_trace``.

        With an effective speculation width K > 1 the same search runs
        through the :class:`~repro.core.attempts.SpeculativeSearchDriver`
        (K attempts raced concurrently, losers cancelled); the committed
        result is fingerprint-identical by construction.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._schedule_inner(graph)
        token = tracer.begin("schedule", "schedule", loop=graph.name)
        try:
            result = self._schedule_inner(graph)
        except Exception as exc:
            tracer.end(token, error=type(exc).__name__)
            raise
        tracer.end(
            token,
            converged=result.converged,
            ii=result.ii,
            mii=result.mii,
            restarts=result.restarts,
        )
        return result

    def _schedule_inner(self, graph: DependenceGraph) -> ScheduleResult:
        tracer = self.tracer
        started = time.perf_counter()
        prepare = (
            tracer.begin("phase.prepare", "schedule", loop=graph.name)
            if tracer.enabled
            else None
        )
        pristine = graph.clone()
        ordering = hrms_order(pristine, self.machine)
        mii = compute_mii(pristine, self.machine)
        limit = max_ii_for(mii, len(pristine), self.params)
        if prepare is not None:
            tracer.end(prepare, mii=mii, limit=limit, nodes=len(pristine))

        if self.params.effective_speculation() > 1:
            return self._schedule_speculative(
                pristine, ordering.priority, mii, limit, started
            )

        search_span = (
            tracer.begin("phase.search", "schedule", mii=mii, limit=limit)
            if tracer.enabled
            else None
        )
        policy = self.params.make_search_policy()
        best: SchedulerState | None = None
        trace: list[AttemptOutcome] = []
        attempted: set[int] = set()
        ii = policy.first_ii(mii, limit)
        while ii is not None and mii <= ii <= limit and ii not in attempted:
            attempted.add(ii)
            state, outcome = self._engine.run(
                pristine.clone(), ii, ordering.priority
            )
            trace.append(outcome)
            if state is not None and (best is None or state.ii < best.ii):
                best = state
            ii = policy.next_ii(outcome)
        if search_span is not None:
            tracer.end(
                search_span,
                attempts=len(trace),
                best_ii=None if best is None else best.ii,
            )

        if best is not None:
            # restarts counts the attempts that did not produce the
            # accepted schedule (= failed attempts under linear search).
            return self._finalize(
                FeasibleState.from_state(best),
                mii,
                len(trace) - 1,
                time.perf_counter() - started,
                [o.as_trace_entry() for o in trace],
            )
        return self._give_up(
            pristine, mii, limit,
            path_iis=[o.ii for o in trace],
            trace_entries=[o.as_trace_entry() for o in trace],
            elapsed=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------

    def _schedule_speculative(
        self,
        pristine: DependenceGraph,
        priorities: dict[int, float],
        mii: int,
        limit: int,
        started: float,
    ) -> ScheduleResult:
        tracer = self.tracer
        # Opened before the driver is built: spinning up the attempt
        # pool is part of the search cost, and the phases must tile the
        # schedule span (the summary gates coverage near 1.0).
        search_span = (
            tracer.begin(
                "phase.search", "schedule",
                mii=mii, limit=limit,
                speculation=self.params.effective_speculation(),
            )
            if tracer.enabled
            else None
        )
        driver = SpeculativeSearchDriver(
            self.machine, self.params, self.params.effective_speculation(),
            tracer=tracer,
        )
        found = driver.search(pristine, priorities, mii, limit)
        if search_span is not None:
            tracer.end(
                search_span,
                attempts=len(found.path),
                executed=found.stats.executed_attempts,
                best_ii=None if found.best is None else found.best.ii,
            )
        elapsed = time.perf_counter() - started
        if found.best is not None:
            return self._finalize(
                found.best,
                mii,
                len(found.path) - 1,
                elapsed,
                found.executed,
                search=found.stats,
            )
        return self._give_up(
            pristine, mii, limit,
            path_iis=[r.ii for r in found.path],
            trace_entries=found.executed,
            elapsed=elapsed,
            search=found.stats,
        )

    def _give_up(
        self,
        pristine: DependenceGraph,
        mii: int,
        limit: int,
        *,
        path_iis: list[int],
        trace_entries: list[dict],
        elapsed: float,
        search: SearchStats | None = None,
    ) -> ScheduleResult:
        """Non-convergence: raise (strict) or report (non-strict).

        ``path_iis`` is the serial-equivalent attempt sequence in search
        order; under jumping policies its last element is *not* the
        highest II probed (geometric backfill descends), so the error
        carries both.  The strict-mode message folds in the
        failure-kind histogram of the attempt trace so the dominant
        failure mode is visible without re-running under a tracer.
        """
        if self.strict:
            last_ii = path_iis[-1] if path_iis else mii
            highest_ii = max(path_iis, default=mii)
            histogram = outcome_histogram(trace_entries)
            detail = ", ".join(
                f"{kind}={count}" for kind, count in histogram.items()
            )
            raise ConvergenceError(
                f"MIRS-C failed to schedule {pristine.name}: no feasible "
                f"II found in {len(path_iis)} attempt(s) up to II="
                f"{highest_ii} (last probed II={last_ii}, cap {limit})"
                + (f"; attempt outcomes: {detail}" if detail else ""),
                last_ii=last_ii,
                highest_ii=highest_ii,
                kind_histogram=histogram,
            )
        return ScheduleResult(
            loop=pristine.name,
            machine=self.machine,
            converged=False,
            ii=limit,
            mii=mii,
            restarts=len(path_iis),
            scheduling_seconds=elapsed,
            stats=SchedulerStats(
                search_trace=trace_entries,
                search=search,
            ),
            trip_count=pristine.trip_count,
        )

    # ------------------------------------------------------------------

    def _attempt(
        self,
        graph: DependenceGraph,
        ii: int,
        priorities: dict[int, float],
    ) -> tuple[SchedulerState | None, AttemptOutcome]:
        """One scheduling attempt at a fixed II (delegates to the
        extracted :class:`~repro.core.attempts.AttemptEngine`)."""
        return self._engine.run(graph, ii, priorities)

    # ------------------------------------------------------------------

    def _finalize(
        self,
        feasible: FeasibleState,
        mii: int,
        restarts: int,
        elapsed: float,
        trace_entries: list[dict] | None = None,
        search: SearchStats | None = None,
    ) -> ScheduleResult:
        tracer = self.tracer
        finalize_span = (
            tracer.begin("phase.finalize", "schedule", ii=feasible.ii)
            if tracer.enabled
            else None
        )
        graph = feasible.graph
        schedule = feasible.schedule
        stats = feasible.stats
        if trace_entries is not None:
            stats.search_trace = trace_entries
        if search is not None:
            stats.search = search
        # Batch role: the result is summarised with a from-scratch
        # analysis (the live pressure tracker was already detached when
        # the feasible state was captured).
        analysis = LifetimeAnalysis(
            graph, schedule, self.machine,
            spilled_invariants=feasible.spilled_invariants,
        )
        allocations = allocate_registers(
            graph, schedule, self.machine, analysis,
            spilled_invariants=feasible.spilled_invariants,
        )
        times = {n: schedule.time(n) for n in schedule.scheduled_ids()}
        clusters = {n: schedule.cluster(n) for n in schedule.scheduled_ids()}
        register_usage = {
            c: a.registers_used for c, a in allocations.items()
        }
        result = ScheduleResult(
            loop=graph.name,
            machine=self.machine,
            converged=True,
            ii=feasible.ii,
            mii=mii,
            times=times,
            clusters=clusters,
            register_usage=register_usage,
            max_live={
                c: analysis.max_live(c)
                for c in range(self.machine.clusters)
            },
            memory_traffic=feasible.memory_traffic,
            spill_operations=sum(
                1 for n in graph.nodes() if n.is_spill
            ),
            move_operations=graph.count_kind(OpKind.MOVE),
            stage_count=max(1, schedule.stage_count()),
            restarts=restarts,
            scheduling_seconds=elapsed,
            stats=stats,
            graph=graph,
            trip_count=graph.trip_count,
        )
        if self.verify:
            violations = verify_schedule(
                graph,
                self.machine,
                feasible.ii,
                times,
                clusters,
                register_usage,
            )
            if violations:
                raise SchedulingError(
                    f"MIRS-C produced an invalid schedule for {graph.name}: "
                    + "; ".join(violations[:5])
                )
        if finalize_span is not None:
            tracer.end(
                finalize_span,
                registers=sum(register_usage.values()),
                spills=result.spill_operations,
                moves=result.move_operations,
            )
        return result


class Mirs(MirsC):
    """MIRS - the non-clustered special case of MIRS-C [33].

    On a single-cluster machine MIRS-C's cluster steps are inert, so MIRS
    is implemented as MIRS-C restricted to ``clusters == 1``; constructing
    it with a clustered machine is an error.
    """

    def __init__(
        self,
        machine: MachineConfig,
        params: MirsParams | None = None,
        verify: bool = True,
        strict: bool = True,
        search=None,
        speculation: int | None = None,
        tracer=None,
    ):
        if machine.clusters != 1:
            raise SchedulingError(
                "Mirs targets unified (single-cluster) machines; "
                "use MirsC for clustered configurations"
            )
        super().__init__(
            machine, params=params, verify=verify, strict=strict,
            search=search, speculation=speculation, tracer=tracer,
        )
