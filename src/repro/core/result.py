"""Schedule results and derived metrics."""

from __future__ import annotations

import dataclasses

from repro.core.state import SchedulerStats
from repro.graph.ddg import DependenceGraph
from repro.machine.config import MachineConfig


@dataclasses.dataclass
class ScheduleResult:
    """The outcome of scheduling one loop on one machine configuration.

    Attributes:
        loop: the loop's name.
        machine: the target configuration.
        converged: False when the scheduler gave up (possible for the
            non-iterative baseline; MIRS-C always converges).
        ii: achieved initiation interval (meaningless when not converged).
        mii: the lower bound the search started from.
        times / clusters: per-node issue cycles and cluster assignments.
        register_usage: physical registers used per cluster (after
            allocation).
        max_live: MaxLive per cluster.
        memory_traffic: memory operations per iteration, spill included.
        spill_operations: spill loads+stores inserted.
        move_operations: inter-cluster moves in the final schedule.
        stage_count: kernel stages (depth of iteration overlap).
        restarts: times the II had to be increased.
        scheduling_seconds: wall-clock time spent scheduling.
        stats: low-level scheduler counters.
        graph: the final dependence graph (with spill/move nodes), used by
            the memory-hierarchy simulator.
        trip_count: loop trip count (from the workload).
    """

    loop: str
    machine: MachineConfig
    converged: bool
    ii: int
    mii: int
    times: dict[int, int] = dataclasses.field(default_factory=dict)
    clusters: dict[int, int] = dataclasses.field(default_factory=dict)
    register_usage: dict[int, int] = dataclasses.field(default_factory=dict)
    max_live: dict[int, int] = dataclasses.field(default_factory=dict)
    memory_traffic: int = 0
    spill_operations: int = 0
    move_operations: int = 0
    stage_count: int = 1
    restarts: int = 0
    scheduling_seconds: float = 0.0
    stats: SchedulerStats = dataclasses.field(default_factory=SchedulerStats)
    graph: DependenceGraph | None = None
    trip_count: int = 0
    #: Exact-backend verdict (``scheduler="smt"`` only): engine, status
    #: (``optimal`` / ``feasible`` / ``skipped`` / ``infeasible``), the
    #: proven lower II and the per-II certificate ledger.  ``None`` for
    #: heuristic results.  Like ``scheduling_seconds`` it is diagnostic
    #: provenance, deliberately outside ``result_fingerprint`` (which
    #: builds its payload explicitly).
    oracle: dict | None = None

    @property
    def execution_cycles(self) -> int:
        """Kernel cycles to run the whole loop, prologue/epilogue included.

        A software-pipelined loop with SC kernel stages executes for
        ``II * (N + SC - 1)`` cycles over N iterations.
        """
        if not self.converged:
            raise ValueError(f"loop {self.loop} did not converge")
        overlap = max(0, self.stage_count - 1)
        return self.ii * (self.trip_count + overlap)

    @property
    def total_registers_used(self) -> int:
        return sum(self.register_usage.values())

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "ok" if self.converged else "NOT CONVERGED"
        return (
            f"{self.loop}: II={self.ii} (MII={self.mii}) [{status}] "
            f"traffic={self.memory_traffic} moves={self.move_operations} "
            f"spills={self.spill_operations} "
            f"regs={self.register_usage}"
        )
