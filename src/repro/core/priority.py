"""The PriorityList driving the iterative scheduler.

Nodes are picked highest-priority first; ejected nodes "are returned to
the PriorityList with their original priority" (Section 3.2.2), and spill
or move nodes inherit priorities adjacent to their associated
producer/consumer nodes (Sections 3.1 and 3.2.3).

Implemented as a heap with lazy invalidation so membership changes (ejected
moves being removed from the graph, for example) stay O(log n).
"""

from __future__ import annotations

import heapq
import itertools

from repro.errors import SchedulingError


class PriorityList:
    """Max-priority queue of node ids with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int]] = []
        self._members: set[int] = set()
        self._counter = itertools.count()
        self.priority: dict[int, float] = {}

    def set_priority(self, node_id: int, priority: float) -> None:
        """Record the (original) priority of a node without queueing it."""
        self.priority[node_id] = priority

    def push(self, node_id: int, priority: float | None = None) -> None:
        """Queue a node.  Without an explicit priority the node's recorded
        original priority is used (the ejection rule of the paper)."""
        if priority is not None:
            self.priority[node_id] = priority
        if node_id not in self.priority:
            raise SchedulingError(f"node {node_id} has no priority assigned")
        if node_id in self._members:
            return
        self._members.add(node_id)
        heapq.heappush(
            self._heap,
            (-self.priority[node_id], next(self._counter), node_id),
        )

    def pop(self) -> int:
        """Remove and return the highest-priority queued node."""
        while self._heap:
            _, _, node_id = heapq.heappop(self._heap)
            if node_id in self._members:
                self._members.remove(node_id)
                return node_id
        raise SchedulingError("pop from empty PriorityList")

    def discard(self, node_id: int) -> None:
        """Drop a node from the queue if present (lazy removal).

        The recorded priority is kept: a node discarded because it was
        removed from the graph never returns, and one discarded
        temporarily keeps its original priority as the paper requires.
        """
        self._members.discard(node_id)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def empty(self) -> bool:
        return not self._members
