"""Shared mutable state of one scheduling attempt (graph + schedule + list).

This object owns the consistency rules that make MIRS-C's backtracking
safe (Sections 3.2.2 and 3.3.2):

* ejected operations return to the PriorityList with their original
  priority;
* a move is removed from the dependence graph (not merely unscheduled)
  whenever its producer is ejected or its unique consumer is ejected -
  when the operation is picked up again the algorithm re-decides whether
  communication is needed at all;
* removing a move reconnects its consumers to its producer, adding the
  edge distances along the move chain;
* removing an *invariant* move restores the direct invariant consumption
  of its consumers and un-marks the invariant spill.
"""

from __future__ import annotations

import dataclasses

from repro.errors import SchedulingError
from repro.graph.ddg import DepKind, DependenceGraph
from repro.machine.config import MachineConfig
from repro.core.params import MirsParams
from repro.core.priority import PriorityList
from repro.obs.metrics import LegacySearchStats, SearchStats
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.schedule.colouring import IncrementalArcColouring
from repro.schedule.partial import PartialSchedule
from repro.schedule.pressure import PressureTracker


@dataclasses.dataclass
class SchedulerStats:
    """Counters reported in the final result."""

    ejections: int = 0
    forced_placements: int = 0
    moves_added: int = 0
    moves_removed: int = 0
    spill_stores_added: int = 0
    spill_loads_added: int = 0
    invariant_spills: int = 0
    balance_shifts: int = 0
    nodes_scheduled: int = 0
    #: Full II-search trace: one entry per attempt, in attempt order
    #: (:meth:`repro.core.search.AttemptOutcome.as_trace_entry` dicts).
    #: Diagnostic, like ``scheduling_seconds``: excluded from result
    #: fingerprints so the default policy stays fingerprint-identical
    #: to the pre-policy scheduler.  Under the speculative driver the
    #: entries cover *every executed* attempt in II order (speculative
    #: extras included), each carrying an ``on_path`` marker.
    search_trace: list[dict] = dataclasses.field(default_factory=list)
    #: Typed II-search ledger (frontier width, launched / executed /
    #: cancelled attempt counts — see
    #: :class:`repro.core.attempts.SpeculativeSearchDriver`); ``None``
    #: for the serial driver.  Diagnostic like ``search_trace``:
    #: excluded from result fingerprints, so speculative and serial
    #: runs stay fingerprint-identical.
    search: SearchStats | None = None

    @property
    def search_stats(self) -> LegacySearchStats:
        """The historical dict shape of :attr:`search`.

        Kept for backwards compatibility: equality/iteration/JSON
        behave as before, keyed access raises a
        :class:`~repro.errors.ConfigError` (read the typed
        :attr:`search` instead).
        """
        return LegacySearchStats(
            {} if self.search is None else self.search.as_dict()
        )


class SchedulerState:
    """All mutable state of one scheduling attempt at a fixed II."""

    def __init__(
        self,
        graph: DependenceGraph,
        machine: MachineConfig,
        ii: int,
        priorities: dict[int, float],
        params: MirsParams,
        tracer: Tracer = NULL_TRACER,
    ):
        self.graph = graph
        self.machine = machine
        self.ii = ii
        self.params = params
        self.tracer = tracer
        self.schedule = PartialSchedule(machine, ii)
        self.pl = PriorityList()
        for node_id, priority in priorities.items():
            self.pl.push(node_id, priority)
        self.budget = params.budget_ratio * max(1, len(graph))
        self.stats = SchedulerStats()
        #: (invariant id, cluster) pairs whose register was spilled away.
        self.spilled_invariants: set[tuple[int, int]] = set()
        #: Incremental register-pressure engine: observes every
        #: placement/ejection and every graph mutation, so MaxLive, the
        #: critical row and the use segments are always current without
        #: per-check recomputation (the old per-placement
        #: ``LifetimeAnalysis`` hot path).
        self.pressure = PressureTracker(
            graph, self.schedule, machine, self.spilled_invariants,
            tracer=tracer,
        )
        #: Incremental wrap-around register colouring: mirrors the
        #: tracker's lifetimes and serves the drained-regime register
        #: allocation (``registers_used`` per cluster) from per-cluster
        #: caches, register-count-identical to the batch ``_colour_arcs``
        #: path.  ``None`` when the machine has no register limit (the
        #: allocator verdict is never consulted) or the param turns the
        #: engine off (the batch-oracle configuration).
        self.colouring: IncrementalArcColouring | None = None
        if params.incremental_colouring and machine.cluster.registers is not None:
            self.colouring = IncrementalArcColouring(
                graph, self.schedule, machine, self.pressure,
                tracer=tracer,
            )
        # Memory operations are counted incrementally: spill insertion is
        # the only way the count grows (moves are not memory operations).
        self._mem_ops = sum(1 for n in graph.nodes() if n.kind.is_memory)
        #: Consecutive eject-only spill-check rounds (maintained by the
        #: driver when ``MirsParams.bound_eject_churn`` resolves on).
        self.eject_churn_run = 0

    # ------------------------------------------------------------------
    # Ejection (the backtracking primitive)
    # ------------------------------------------------------------------

    def eject_node(self, node_id: int) -> None:
        """Eject a scheduled node back onto the PriorityList.

        Moves attached to the node are removed from the graph entirely,
        per the rules of Section 3.3.2.
        """
        if not self.schedule.is_scheduled(node_id):
            raise SchedulingError(f"cannot eject unscheduled node {node_id}")
        node = self.graph.node(node_id)
        self.schedule.eject(node_id)
        self.stats.ejections += 1
        self.pl.push(node_id)  # original priority
        if node.is_move:
            # A move ejected by a resource conflict simply goes back to
            # the list; its endpoints are untouched.
            return
        # Rule 1: moves transporting this node's value lose their producer.
        # (Snapshots are deduped and re-checked: removing one move can
        # rewire edges or cascade onto parallel edges from the same move.)
        for succ_id in sorted({e.dst for e in self.graph.out_edges(node_id)}):
            if succ_id not in self.graph:
                continue
            successor = self.graph.node(succ_id)
            if successor.is_move and successor.move_of == node_id:
                self.remove_move(succ_id)
        # Rule 2: moves whose unique consumer this node was are useless.
        for pred_id in sorted({e.src for e in self.graph.in_edges(node_id)}):
            if pred_id not in self.graph:
                continue
            predecessor = self.graph.node(pred_id)
            if not predecessor.is_move:
                continue
            consumers = {
                e.dst
                for e in self.graph.out_edges(pred_id)
                if e.kind is DepKind.REG
            }
            if consumers == {node_id}:
                self.remove_move(pred_id)

    # ------------------------------------------------------------------
    # Move removal
    # ------------------------------------------------------------------

    def remove_move(self, move_id: int) -> None:
        """Remove a move from schedule, PriorityList and graph.

        Consumers are reconnected to the move's producer (with combined
        edge distances); invariant moves give their consumers back to the
        invariant and clear the corresponding spill marker.
        """
        move = self.graph.node(move_id)
        if not move.is_move:
            raise SchedulingError(f"node {move_id} is not a move")
        move_cluster = (
            self.schedule.cluster(move_id)
            if self.schedule.is_scheduled(move_id)
            else None
        )
        self.schedule.forget(move_id)
        self.pl.discard(move_id)

        out_edges = [
            e for e in self.graph.out_edges(move_id) if e.kind is DepKind.REG
        ]
        if move.move_of_invariant is not None:
            invariant = self.graph.invariant(move.move_of_invariant)
            dst_cluster = move_cluster
            for edge in out_edges:
                invariant.consumers.add(edge.dst)
                if dst_cluster is None and self.schedule.is_scheduled(edge.dst):
                    dst_cluster = self.schedule.cluster(edge.dst)
            # The invariant regains its register in the destination
            # cluster (the spill is undone).
            if dst_cluster is not None:
                self.spilled_invariants.discard(
                    (invariant.id, dst_cluster)
                )
        else:
            in_edges = [
                e for e in self.graph.in_edges(move_id) if e.kind is DepKind.REG
            ]
            if in_edges:
                producer_edge = in_edges[0]
                for edge in out_edges:
                    self.graph.add_edge(
                        producer_edge.src,
                        edge.dst,
                        kind=DepKind.REG,
                        distance=producer_edge.distance + edge.distance,
                    )
        self.graph.remove_node(move_id)
        self.stats.moves_removed += 1

    # ------------------------------------------------------------------
    # Queries shared by the heuristics
    # ------------------------------------------------------------------

    def scheduled_reg_consumers(self, node_id: int) -> list[tuple[int, int]]:
        """(consumer id, cluster) for scheduled register consumers."""
        result = []
        for edge in self.graph.out_edges(node_id):
            if edge.kind is DepKind.REG and self.schedule.is_scheduled(edge.dst):
                result.append((edge.dst, self.schedule.cluster(edge.dst)))
        return result

    def memory_operation_count(self) -> int:
        """Memory operations per iteration (original + spill traffic)."""
        return self._mem_ops

    def note_memory_node_added(self) -> None:
        """Spill heuristics call this for every load/store they insert."""
        self._mem_ops += 1

    def memory_traffic_infeasible(self) -> bool:
        """True when the memory ports cannot sustain the current traffic
        at this II - one of the two restart conditions (Section 3.2.4)."""
        ports = self.machine.total_mem_ports
        if ports == 0:
            return self.memory_operation_count() > 0
        return self.memory_operation_count() > self.ii * ports

    def suggested_restart_ii(self) -> int:
        """The smallest II worth retrying after a traffic-driven restart."""
        ports = max(1, self.machine.total_mem_ports)
        needed = -(-self.memory_operation_count() // ports)  # ceil div
        return max(self.ii + 1, needed)

    def has_spill_store(self, value_id: int) -> bool:
        """True if the value already has a spill store in the graph
        (spilling another use of it then costs only the load)."""
        for edge in self.graph.out_edges(value_id):
            node = self.graph.node(edge.dst)
            if node.is_spill and node.kind.is_memory and (
                node.spilled_value == value_id
            ):
                return True
        return False
