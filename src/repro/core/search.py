"""Pluggable II-search policies for the MIRS-C driver.

The paper's driver (Figure 4, step (6)) restarts a failed attempt at
``II + 1``: *"Re_Initialize(II++, S, Priority_List)"*.  That linear
ladder is correct but slow on pressure-bound loops — the II must climb
far above MII before MaxLive fits the register file, one failed attempt
per step.  Rau's iterative modulo scheduling [28] and the MIRS work [33]
treat the restart II as a search problem; this module makes it one.

Every scheduling attempt at a fixed II produces a structured
:class:`AttemptOutcome` (instead of the old bare ``None``): which of the
step-(6) restart conditions fired, the measured per-cluster pressure
deficit (MaxLive vs AR from the incremental
:class:`~repro.schedule.pressure.PressureTracker`), the restart budget
consumed, and the scheduler's own suggested next II.  An
:class:`IISearchPolicy` consumes outcomes and names the next II to try:

* :class:`LinearSearch` — the paper's ladder, ``II + 1`` per failure
  (the default; schedules are fingerprint-identical to the fixed
  ladder);
* :class:`GeometricPressureSearch` — jumps sized by the measured
  pressure deficit (never more than ``deficit`` or a fraction of the
  current II), latching into the paper's ladder once the deficit goes
  small so the first feasible II is always approached from below;
* :class:`BisectionSearch` — multiplies the II until an attempt
  succeeds, then bisects between the last failing and the first
  feasible II (falling back to the ladder when the ascent finds
  nothing); the driver retains the verified schedule of the lowest
  feasible point.

The driver records the full ``(ii, outcome)`` trace in
``ScheduleResult.stats.search_trace`` and the policy's
:meth:`~IISearchPolicy.canonical` form participates in the ``exec``
cache keys (through :meth:`repro.core.params.MirsParams.canonical`), so
results computed under different policies never alias in the cache.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Protocol, runtime_checkable

from repro.errors import ConfigError


class OutcomeKind(enum.Enum):
    """How one fixed-II scheduling attempt ended.

    ``SCHEDULED`` is the success case; the failure kinds map onto the
    paper's restart conditions (Section 3.2.4 / Figure 4 step (6)):

    * ``BUDGET_EXHAUSTED`` — the backtracking budget
      (``Budget_Ratio x Number_Nodes``) ran out before the
      PriorityList drained;
    * ``TRAFFIC_INFEASIBLE`` — spill code pushed the memory traffic
      beyond what the memory ports sustain at this II;
    * ``REGISTER_INFEASIBLE`` — the drained-regime register allocation
      could not fit and the spill/balance/eject machinery had no action
      left to take;
    * ``ROUND_CAP`` — the drained-regime spill/allocate loop was still
      making progress when it hit the final-round cap
      (:meth:`repro.core.params.MirsParams.final_round_cap_for`) — the
      register-infeasible verdict for attempts that thrash rather than
      settle.
    """

    SCHEDULED = "scheduled"
    BUDGET_EXHAUSTED = "budget"
    TRAFFIC_INFEASIBLE = "traffic"
    REGISTER_INFEASIBLE = "registers"
    ROUND_CAP = "round-cap"

    @property
    def is_register_bound(self) -> bool:
        """True for the two drained-regime register-pressure failures."""
        return self in (
            OutcomeKind.REGISTER_INFEASIBLE, OutcomeKind.ROUND_CAP
        )


@dataclasses.dataclass(frozen=True)
class AttemptOutcome:
    """Structured result of one scheduling attempt at a fixed II.

    Attributes:
        ii: the II the attempt ran at.
        kind: how the attempt ended (see :class:`OutcomeKind`).
        pressure_deficit: per-cluster ``max(0, MaxLive - AR)`` measured
            when the attempt ended (empty on machines with unbounded
            register files).
        registers_available: AR, registers per cluster (``None`` when
            unbounded).
        budget_left: restart budget remaining (<= 0 when exhausted).
        suggested_ii: the scheduler's own lower bound on the next II
            worth trying (always > ``ii``; traffic-driven failures push
            it to ``ceil(traffic / ports)``, matching the old
            ``_suggested_ii`` side-channel).
        final_rounds: drained-regime spill/allocate rounds consumed.
    """

    ii: int
    kind: OutcomeKind
    pressure_deficit: dict[int, int] = dataclasses.field(default_factory=dict)
    registers_available: int | None = None
    budget_left: int = 0
    suggested_ii: int = 0
    final_rounds: int = 0

    @property
    def scheduled(self) -> bool:
        return self.kind is OutcomeKind.SCHEDULED

    @property
    def max_deficit(self) -> int:
        """The worst per-cluster register deficit (0 when none)."""
        return max(self.pressure_deficit.values(), default=0)

    def as_trace_entry(self) -> dict:
        """Compact JSON-friendly form for ``stats.search_trace``."""
        return {
            "ii": self.ii,
            "kind": self.kind.value,
            "deficit": dict(sorted(self.pressure_deficit.items())),
            "budget_left": self.budget_left,
            "suggested_ii": self.suggested_ii,
            "final_rounds": self.final_rounds,
        }


def predicted_failure(ii: int) -> AttemptOutcome:
    """A conservative synthetic failure outcome for frontier prediction.

    The speculative driver (:mod:`repro.core.attempts`) must guess
    which IIs a policy will request *before* the anchoring attempt
    completes.  A budget-exhausted outcome with no measured deficit and
    the minimal ``suggested_ii`` makes every built-in policy take its
    smallest forward step (linear and a latched geometric: ``II + 1``;
    bisection's ascent: the growth step), so the predicted frontier
    matches the serial trajectory whenever attempts fail "ordinarily"
    and is merely conservative (wasted speculation, never a wrong
    committed result) when they do not.  The policy object fed these is
    replayed fresh from :meth:`IISearchPolicy.first_ii` before the next
    frontier, so synthetic outcomes never contaminate the real path.
    """
    return AttemptOutcome(
        ii=ii, kind=OutcomeKind.BUDGET_EXHAUSTED, suggested_ii=ii + 1
    )


@runtime_checkable
class IISearchPolicy(Protocol):
    """The II-search contract the MIRS-C driver programs against.

    A policy is a stateful, single-search object: :meth:`first_ii`
    begins a new search (resetting any state left by a previous one)
    and :meth:`next_ii` consumes the outcome of the attempt it last
    requested.  The driver guarantees outcomes arrive in request order.
    """

    def first_ii(self, mii: int, limit: int) -> int:
        """The first II to attempt; starts (and resets) a search."""
        ...

    def next_ii(self, outcome: AttemptOutcome) -> int | None:
        """The next II to attempt, or ``None`` to end the search.

        Ending the search after at least one ``SCHEDULED`` outcome
        accepts the lowest successfully scheduled II (the driver keeps
        its verified schedule); ending it without one reports
        non-convergence.
        """
        ...

    def canonical(self) -> dict:
        """Stable JSON-serializable identity (cache keys, reports)."""
        ...


class LinearSearch:
    """The paper's ladder: restart at ``II + 1`` (Figure 4, step (6)).

    Identical to the historical hardwired driver, including the
    traffic-driven skip to the scheduler's suggested II — schedules
    produced under this policy are bit-identical (fingerprint-equal) to
    the pre-policy scheduler's.  This is the default.
    """

    name = "linear"
    #: Paper-exact attempts: eject-only churn is bounded only by the
    #: restart budget, as in Figure 4.
    bound_eject_churn = False

    def __init__(self) -> None:
        self._limit = 0

    def first_ii(self, mii: int, limit: int) -> int:
        self._limit = limit
        return mii

    def next_ii(self, outcome: AttemptOutcome) -> int | None:
        if outcome.scheduled:
            return None
        ii = max(outcome.ii + 1, outcome.suggested_ii)
        return ii if ii <= self._limit else None

    def canonical(self) -> dict:
        return {"name": self.name}

    def __repr__(self) -> str:
        return "LinearSearch()"


class GeometricPressureSearch:
    """Deficit-scaled jumps from below, then a latched linear tail.

    The measured stress landscape (see README, "Choosing an II search
    policy") is *not* monotone in II: feasible IIs are isolated points
    (stress1 has exactly one in its whole search range), so a policy
    that ever jumps past the linear ladder's first feasible II cannot
    come back and accepts a strictly worse schedule.  This policy is
    therefore built to approach from below:

    * while failures carry a large register deficit
      (``max_deficit >= tail_deficit``), it jumps
      ``min(deficit, ceil(II * jump_fraction))`` cycles — the deficit
      bounds how far the pressure can possibly fall per II step
      (removing one register of MaxLive never takes more than one II
      step in the observed decay), and the ``jump_fraction`` cap keeps
      a noisy deficit snapshot from overshooting on small loops;
    * the first failure with a small deficit **latches** the policy
      into the paper's ``II + 1`` ladder for the rest of the search
      (the deficit is noisy near the frontier — 4 at one II, 24 a few
      steps later — so un-latching would jump past the needle).

    The scheduler's ``suggested_ii`` (exact for traffic failures) is
    always honoured as a floor.  On the workbench, deficits are small
    from the first failure, so the policy degenerates to the linear
    ladder and finds the same II.
    """

    name = "geometric"
    #: Jump policies probe sparse IIs, so an attempt must fail *because
    #: the II is too small*, not because the eject-and-replace cycle
    #: outlasted the budget: churn is bounded by the round cap (see
    #: ``MirsParams.bound_eject_churn``), which both speeds failing
    #: attempts up ~6x and makes the failure kind (and its pressure
    #: deficit) a usable gradient.  Measured on the workbench and the
    #: stress seeds, the bound changes no attempt verdict — only how
    #: fast doomed attempts die.
    bound_eject_churn = True

    def __init__(self, jump_fraction: float = 0.25, tail_deficit: int = 40):
        if not 0.0 < jump_fraction <= 1.0:
            raise ConfigError("jump fraction must be in (0, 1]")
        if tail_deficit < 1:
            raise ConfigError("tail deficit must be at least 1")
        self.jump_fraction = jump_fraction
        self.tail_deficit = tail_deficit
        self._limit = 0
        self._mii = 1
        self._latched = False
        self._backfill = False
        self._issued: set[int] = set()

    def first_ii(self, mii: int, limit: int) -> int:
        self._limit = limit
        self._mii = mii
        self._latched = False
        self._backfill = False
        self._issued = {mii}
        return mii

    def _issue(self, ii: int) -> int:
        self._issued.add(ii)
        return ii

    def next_ii(self, outcome: AttemptOutcome) -> int | None:
        if outcome.scheduled:
            return None
        if self._backfill:
            # Descending over the jumped-over gaps, nearest-first: the
            # needle, if any, is most likely just below the latch point
            # (that is where the deficit went small).
            ii = outcome.ii - 1
            while ii in self._issued:
                ii -= 1
            return self._issue(ii) if ii >= self._mii else None
        ii = max(outcome.ii + 1, outcome.suggested_ii)
        if not self._latched:
            deficit = outcome.max_deficit
            if deficit >= self.tail_deficit:
                jump = min(
                    deficit,
                    max(1, math.ceil(outcome.ii * self.jump_fraction)),
                )
                ii = max(ii, outcome.ii + jump)
            else:
                self._latched = True
        if ii <= self._limit:
            return self._issue(ii)
        # Ladder exhausted the cap: if the jumps skipped IIs on the way
        # up, scan them (descending) before giving up, so a jump can
        # never cost a convergence the paper's ladder would have found.
        self._backfill = True
        ii = outcome.ii
        while ii in self._issued:
            ii -= 1
        return self._issue(ii) if ii >= self._mii else None

    def canonical(self) -> dict:
        return {
            "name": self.name,
            "jump_fraction": self.jump_fraction,
            "tail_deficit": self.tail_deficit,
        }

    def __repr__(self) -> str:
        return (
            f"GeometricPressureSearch(jump_fraction={self.jump_fraction}, "
            f"tail_deficit={self.tail_deficit})"
        )


class BisectionSearch:
    """Overshoot to a feasible II, bisect down — with a ladder fallback.

    Phase 1 (ascent) starts at MII like the ladder, then grows the II
    multiplicatively (``growth`` per failed attempt, the scheduler's
    ``suggested_ii`` as a floor) until an attempt schedules or the cap
    is reached.  Phase 2 bisects the open interval between the highest
    failing and the lowest feasible II; every probe is a full
    scheduling attempt, so the accepted point is verified by
    construction — the driver keeps the schedule of the lowest II that
    scheduled, which is exactly where the bisection converges.

    Bisection assumes feasibility is monotone in II.  On landscapes
    where it is not (the stress seeds — see the README section), two
    protections apply: the bisection itself can only ever *lower* the
    accepted II below the ascent's first feasible point, and an ascent
    that reaches the II cap without a single feasible probe falls back
    to the paper's ladder over the unprobed IIs, so the policy never
    loses a convergence the linear ladder would have found.  The
    accepted II can still exceed linear's by up to the overshoot band
    (~the last ascent step) on non-monotone loops — that is the
    documented price of its O(log range) attempt count; prefer
    ``geometric`` when schedule quality matters more than attempts.
    """

    name = "bisection"
    #: See :class:`GeometricPressureSearch`: bisection probes require
    #: failures to mean "II too small", so churn is round-capped.
    bound_eject_churn = True

    def __init__(self, growth: float = 2.0):
        if growth <= 1.0:
            raise ConfigError("growth must be > 1")
        self.growth = growth
        self._limit = 0
        self._mii = 1
        self._lo = 0  # highest II known to fail
        self._hi: int | None = None  # lowest II known to schedule
        self._issued: set[int] = set()
        self._fallback = False

    def first_ii(self, mii: int, limit: int) -> int:
        self._limit = limit
        self._mii = mii
        self._lo = mii - 1
        self._hi = None
        self._issued = {mii}
        self._fallback = False
        return mii

    def _issue(self, ii: int) -> int:
        self._issued.add(ii)
        return ii

    def _ladder(self, ii: int) -> int | None:
        """Next unprobed II of the fallback ladder, respecting the cap."""
        while ii in self._issued:
            ii += 1
        return self._issue(ii) if ii <= self._limit else None

    def next_ii(self, outcome: AttemptOutcome) -> int | None:
        if self._fallback:
            if outcome.scheduled:
                return None
            return self._ladder(max(outcome.ii + 1, outcome.suggested_ii))
        if outcome.scheduled:
            self._hi = outcome.ii
        else:
            self._lo = max(self._lo, outcome.ii)
        if self._hi is None:
            if outcome.ii >= self._limit:
                # Ascent exhausted without one feasible II: the
                # landscape is not monotone here — scan the unprobed
                # IIs like the paper's ladder rather than give up.
                self._fallback = True
                return self._ladder(self._mii)
            ii = max(
                outcome.ii + 1,
                outcome.suggested_ii,
                math.ceil(outcome.ii * self.growth),
            )
            return self._issue(min(ii, self._limit))
        if self._hi - self._lo <= 1:
            return None  # frontier pinned: accept self._hi
        return self._issue((self._lo + self._hi) // 2)

    def canonical(self) -> dict:
        return {"name": self.name, "growth": self.growth}

    def __repr__(self) -> str:
        return f"BisectionSearch(growth={self.growth})"


#: Registry of named policies (CLI ``--ii-search``, ``MirsParams``).
POLICIES: dict[str, type] = {
    LinearSearch.name: LinearSearch,
    GeometricPressureSearch.name: GeometricPressureSearch,
    BisectionSearch.name: BisectionSearch,
}

def make_policy(spec) -> IISearchPolicy:
    """Resolve a search spec into a policy instance.

    Strings name a registered policy with default parameters; a policy
    instance is returned as-is (``first_ii`` resets it, so one instance
    serializes fine across consecutive searches).
    """
    if isinstance(spec, str):
        try:
            return POLICIES[spec]()
        except KeyError:
            raise ConfigError(
                f"unknown II-search policy {spec!r}; "
                f"choose from {sorted(POLICIES)}"
            ) from None
    if isinstance(spec, IISearchPolicy):
        return spec
    raise ConfigError(
        f"II-search policy must be a name or an IISearchPolicy, "
        f"got {type(spec).__name__}"
    )


def canonical_search(spec) -> dict:
    """The stable cache-key form of a search spec."""
    return make_policy(spec).canonical()
