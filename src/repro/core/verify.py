"""Independent validation of finished schedules.

Every schedule returned by either scheduler is re-checked from first
principles - dependence edges, resource reservations, cluster-locality of
register values, register-file capacity.  The verifier shares no state
with the schedulers (it rebuilds a fresh MRT), so it catches scheduler
bugs instead of inheriting them; the property-based tests lean on it
heavily.
"""

from __future__ import annotations

from repro.graph.ddg import DepKind, DependenceGraph
from repro.graph.latency import edge_latency
from repro.machine.config import MachineConfig
from repro.schedule.mrt import ModuloReservationTable
from repro.errors import SchedulingError


def verify_schedule(
    graph: DependenceGraph,
    machine: MachineConfig,
    ii: int,
    times: dict[int, int],
    clusters: dict[int, int],
    register_usage: dict[int, int] | None = None,
) -> list[str]:
    """Return a list of violations (empty = the schedule is valid)."""
    violations: list[str] = []

    for node in graph.nodes():
        if node.id not in times:
            violations.append(f"node {node.name} is not scheduled")
        elif node.id not in clusters:
            violations.append(f"node {node.name} has no cluster")

    # Dependences: t(dst) >= t(src) + latency - II * distance.
    for edge in graph.edges():
        if edge.src not in times or edge.dst not in times:
            continue
        latency = edge_latency(graph, edge, machine)
        slack = times[edge.dst] - times[edge.src] - latency + ii * edge.distance
        if slack < 0:
            violations.append(
                f"dependence {edge.src}->{edge.dst} (d={edge.distance}) "
                f"violated by {-slack} cycles"
            )

    # Register values must be consumed in the cluster that holds them.
    for edge in graph.edges():
        if edge.kind is not DepKind.REG:
            continue
        if edge.src not in clusters or edge.dst not in clusters:
            continue
        dst_node = graph.node(edge.dst)
        if dst_node.is_move:
            if dst_node.src_cluster != clusters[edge.src]:
                violations.append(
                    f"move {edge.dst} reads value {edge.src} from cluster "
                    f"{clusters[edge.src]} but declares source "
                    f"{dst_node.src_cluster}"
                )
        elif clusters[edge.src] != clusters[edge.dst]:
            violations.append(
                f"register value {edge.src} (cluster {clusters[edge.src]}) "
                f"consumed cross-cluster by {edge.dst} "
                f"(cluster {clusters[edge.dst]})"
            )

    # Resources: replay every reservation into a fresh MRT.
    mrt = ModuloReservationTable(machine, ii)
    for node in sorted(graph.nodes(), key=lambda n: n.id):
        if node.id not in times or node.id not in clusters:
            continue
        try:
            mrt.place(
                node,
                clusters[node.id],
                times[node.id],
                src_cluster=node.src_cluster,
            )
        except SchedulingError as exc:
            violations.append(f"resource conflict: {exc}")

    # Register files.
    available = machine.cluster.registers
    if available is not None and register_usage is not None:
        for cluster, used in register_usage.items():
            if used > available:
                violations.append(
                    f"cluster {cluster} uses {used} registers "
                    f"but only {available} exist"
                )
    return violations
