"""Independent validation of finished schedules.

Every schedule returned by either scheduler is re-checked from first
principles - dependence edges, resource reservations, cluster-locality of
register values, register-file capacity.  The verifier shares no state
with the schedulers (it rebuilds a fresh MRT), so it catches scheduler
bugs instead of inheriting them; the property-based tests lean on it
heavily.
"""

from __future__ import annotations

from repro.graph.ddg import DepKind, DependenceGraph
from repro.graph.latency import edge_latency
from repro.machine.config import MachineConfig
from repro.machine.resources import ResourceClass
from repro.schedule.mrt import ModuloReservationTable
from repro.errors import SchedulingError


def _instances_assignable(masks: list[int], capacity: int) -> bool:
    """Exact test: can the row-masks be packed onto ``capacity`` instances?

    Each instance may hold any set of pairwise-disjoint masks.  Single-row
    masks reduce to the per-row capacity check the caller already ran;
    multi-row masks (unpipelined operations) make this a small exact
    cover search - backtracking over instances, most-constrained mask
    first, with symmetric instance states deduplicated.  Problem sizes
    are tiny (<= machine FU count instances, <= II-bit masks), so the
    search is effectively instant; a step budget guards pathological
    inputs and errs on the conservative (reject) side.
    """
    masks = sorted(masks, key=lambda m: -m.bit_count())
    instances = [0] * capacity
    budget = 1 << 20

    def backtrack(index: int) -> bool:
        nonlocal budget
        if index == len(masks):
            return True
        budget -= 1
        if budget <= 0:
            return False
        mask = masks[index]
        seen: set[int] = set()
        for slot in range(capacity):
            occupancy = instances[slot]
            if occupancy & mask or occupancy in seen:
                continue
            seen.add(occupancy)
            instances[slot] = occupancy | mask
            if backtrack(index + 1):
                return True
            instances[slot] = occupancy
        return False

    return backtrack(0)


def instances_assignable(masks: list[int], capacity: int) -> bool:
    """Public name of the exact instance-packing test.

    The exact scheduling backend (:mod:`repro.smt`) shares it: both the
    verifier and the solvers must agree on what "fits the instances"
    means for multi-row (unpipelined) reservations.
    """
    return _instances_assignable(masks, capacity)


def verify_schedule(
    graph: DependenceGraph,
    machine: MachineConfig,
    ii: int,
    times: dict[int, int],
    clusters: dict[int, int],
    register_usage: dict[int, int] | None = None,
) -> list[str]:
    """Return a list of violations (empty = the schedule is valid)."""
    violations: list[str] = []

    for node in graph.nodes():
        if node.id not in times:
            violations.append(f"node {node.name} is not scheduled")
        elif node.id not in clusters:
            violations.append(f"node {node.name} has no cluster")

    # Dependences: t(dst) >= t(src) + latency - II * distance.
    for edge in graph.edges():
        if edge.src not in times or edge.dst not in times:
            continue
        latency = edge_latency(graph, edge, machine)
        slack = times[edge.dst] - times[edge.src] - latency + ii * edge.distance
        if slack < 0:
            violations.append(
                f"dependence {edge.src}->{edge.dst} (d={edge.distance}) "
                f"violated by {-slack} cycles"
            )

    # Register values must be consumed in the cluster that holds them.
    for edge in graph.edges():
        if edge.kind is not DepKind.REG:
            continue
        if edge.src not in clusters or edge.dst not in clusters:
            continue
        dst_node = graph.node(edge.dst)
        if dst_node.is_move:
            if dst_node.src_cluster != clusters[edge.src]:
                violations.append(
                    f"move {edge.dst} reads value {edge.src} from cluster "
                    f"{clusters[edge.src]} but declares source "
                    f"{dst_node.src_cluster}"
                )
        elif clusters[edge.src] != clusters[edge.dst]:
            violations.append(
                f"register value {edge.src} (cluster {clusters[edge.src]}) "
                f"consumed cross-cluster by {edge.dst} "
                f"(cluster {clusters[edge.dst]})"
            )

    # Resources: solve the instance assignment exactly.  A first-fit
    # replay (what the scheduler's MRT does online) is order-dependent
    # for multi-row reservations - an unpipelined divide holds one FU
    # for its whole occupancy - so replaying a *valid* schedule in node
    # id order can fail even though the scheduler held a conflict-free
    # assignment while building it (surfaced by the paper-scale suite:
    # div-heavy loops at 1258-loop scale).
    mrt = ModuloReservationTable(machine, ii)
    demands: dict[tuple[ResourceClass, int], list[tuple[int, int]]] = {}
    for node in sorted(graph.nodes(), key=lambda n: n.id):
        if node.id not in times or node.id not in clusters:
            continue
        try:
            groups = mrt.reservation_groups(
                node,
                clusters[node.id],
                times[node.id],
                src_cluster=node.src_cluster,
            )
        except SchedulingError as exc:
            violations.append(f"resource conflict: {exc}")
            continue
        if groups is None:
            violations.append(
                f"resource conflict: node {node.id} self-collides at "
                f"II={ii} (occupancy exceeds the initiation interval)"
            )
            continue
        for resource, target, rows in groups:
            mask = 0
            for row in rows:
                mask |= 1 << row
            demands.setdefault((resource, target), []).append(
                (node.id, mask)
            )
    for (resource, target), items in sorted(
        demands.items(), key=lambda kv: (kv[0][0].name, kv[0][1])
    ):
        capacity = mrt.instance_count(resource, target)
        where = "interconnect" if target == -1 else f"cluster {target}"
        # Per-row capacity: a necessary condition with a precise
        # culprit list when it fails.
        over_rows: list[tuple[int, list[int]]] = []
        for row in range(ii):
            bit = 1 << row
            users = [nid for nid, mask in items if mask & bit]
            if len(users) > capacity:
                over_rows.append((row, users))
        if over_rows:
            row, users = over_rows[0]
            violations.append(
                f"resource conflict: {len(users)} nodes {users} need "
                f"{resource.name} of {where} in MRT row {row} but only "
                f"{capacity} instances exist"
            )
            continue
        if not _instances_assignable([m for _, m in items], capacity):
            violations.append(
                f"resource conflict: reservations on {resource.name} of "
                f"{where} admit no conflict-free assignment onto "
                f"{capacity} instances"
            )

    # Register files.
    available = machine.cluster.registers
    if available is not None and register_usage is not None:
        for cluster, used in register_usage.items():
            if used > available:
                violations.append(
                    f"cluster {cluster} uses {used} registers "
                    f"but only {available} exist"
                )
    return violations
