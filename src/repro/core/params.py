"""Tunable parameters of the MIRS-C algorithm.

The paper fixes three *gauges* controlling the spill heuristic (Section
3.2.3) and one controlling the backtracking budget (Section 3.1):

* ``SG`` (spill gauge) = 2 - spill code is introduced whenever the
  register requirement exceeds ``SG x AR`` during scheduling (and
  whenever it exceeds ``AR`` once the PriorityList has drained),
* ``MSG`` (minimum span gauge) = 4 - a lifetime section must span at
  least this many cycles to be worth spilling,
* ``DG`` (distance gauge) = 4 - spill loads/stores are kept within DG
  cycles of their consumer/producer,
* ``BudgetRatio`` - scheduling attempts allowed per node before the
  current II is abandoned.

``bench_ablation_gauges`` sweeps these to reproduce the sensitivity study
the paper defers to [33].
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class MirsParams:
    """Algorithm parameters (paper defaults).

    The paper does not publish its BudgetRatio; we default to 3, the
    value Rau's iterative modulo scheduling [28] uses, after verifying on
    the workbench that larger budgets (4, 6) produce identical schedules
    while taking 1.6x-2.7x longer.  The ablation benchmark sweeps it.
    """

    budget_ratio: int = 3
    spill_gauge: float = 2.0
    min_span_gauge: int = 4
    distance_gauge: int = 4
    #: Placements between register-pressure checks while the PriorityList
    #: is non-empty.  1 reproduces the paper exactly (a check after every
    #: node); the drained-list checks are always exact regardless.
    spill_check_interval: int = 1
    #: Hard cap on the II explored before declaring non-convergence; when
    #: ``None`` a cap is derived from the loop (see :func:`max_ii_for`).
    max_ii: int | None = None
    #: Safety valve on consecutive ejections while forcing a single node.
    max_force_evictions: int = 64
    #: Moves examined per register-pressure balancing attempt (Sec 3.3.3).
    balance_candidates: int = 4
    #: Single-victim ejection (the paper's policy) vs ejecting every
    #: conflicting node (the policy of [6, 16, 28]); the ablation bench
    #: flips this.
    eject_all: bool = False

    def __post_init__(self) -> None:
        if self.budget_ratio < 1:
            raise ConfigError("budget ratio must be at least 1")
        if self.spill_gauge < 1.0:
            raise ConfigError("spill gauge must be >= 1 (Section 3.2.3)")
        if self.min_span_gauge < 0 or self.distance_gauge < 0:
            raise ConfigError("gauges must be non-negative")

    def canonical(self) -> dict:
        """A stable, JSON-serializable form (cache keys, reports).

        All fields are plain scalars, so ``asdict`` is already canonical;
        kept as a method so new non-scalar fields must make an explicit
        encoding decision here rather than silently breaking cache keys.
        """
        return dataclasses.asdict(self)


def max_ii_for(mii: int, node_count: int, params: MirsParams) -> int:
    """The largest II a scheduler will try before giving up.

    Generous enough that any structurally schedulable loop converges,
    small enough that the baseline's genuine non-convergence (register
    pressure that no II can fix) is detected quickly.
    """
    if params.max_ii is not None:
        return params.max_ii
    return max(4 * mii + 32, mii + node_count, 64)
