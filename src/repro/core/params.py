"""Tunable parameters of the MIRS-C algorithm.

The paper fixes three *gauges* controlling the spill heuristic (Section
3.2.3) and one controlling the backtracking budget (Section 3.1):

* ``SG`` (spill gauge) = 2 - spill code is introduced whenever the
  register requirement exceeds ``SG x AR`` during scheduling (and
  whenever it exceeds ``AR`` once the PriorityList has drained),
* ``MSG`` (minimum span gauge) = 4 - a lifetime section must span at
  least this many cycles to be worth spilling,
* ``DG`` (distance gauge) = 4 - spill loads/stores are kept within DG
  cycles of their consumer/producer,
* ``BudgetRatio`` - scheduling attempts allowed per node before the
  current II is abandoned.

``bench_ablation_gauges`` sweeps these to reproduce the sensitivity study
the paper defers to [33].
"""

from __future__ import annotations

import dataclasses
import os
import warnings

from repro.core.search import canonical_search, make_policy
from repro.errors import ConfigError

#: Environment fallback for :attr:`MirsParams.speculation` (the CLI flag
#: and the explicit field win over it).
SPECULATION_ENV = "REPRO_SPECULATION"


@dataclasses.dataclass(frozen=True)
class SmtParams:
    """Parameters of the exact (``scheduler="smt"``) backend.

    The exact backend proves rather than guesses, so its knobs bound
    *work*, never randomness: every field below is part of the problem's
    identity and participates in :meth:`MirsParams.canonical` (and thus
    the exec cache keys).
    """

    #: Which solver runs the fixed-II decision problems: ``"native"``
    #: (the built-in exact CSP engine, always available), ``"z3"``
    #: (requires the optional ``z3-solver`` package) or ``"auto"``
    #: (z3 when installed, native otherwise).  Resolved by
    #: :meth:`effective_engine` before entering any cache key: two
    #: environments resolving differently *should* key differently,
    #: because the engines may return different (equally optimal)
    #: schedules.
    engine: str = "auto"
    #: Loops larger than this are skipped (``oracle.status ==
    #: "skipped"``) instead of burning the step budget: exact modulo
    #: scheduling is exponential and the oracle targets small loops.
    #: The default admits the whole 16-loop workbench (22-93 nodes);
    #: the step budget, not the node count, is the real work bound.
    max_nodes: int = 96
    #: Machines with more clusters than this are skipped: the cluster
    #: assignment space grows as ``K**nodes``.
    max_clusters: int = 2
    #: Deterministic work bound per fixed-II decision problem, counted
    #: in solver steps (decisions + propagations for the native engine,
    #: a solver-reported budget for z3) — never wall-clock, so cached
    #: verdicts are reproducible.  Exhaustion yields an ``"unknown"``
    #: verdict, not an error.
    step_budget: int = 2_000_000
    #: Extra kernel stages of schedule-length headroom beyond the
    #: critical-path bound.  Every UNSAT certificate records the horizon
    #: it was proven under; raising this widens the claim (and the
    #: search space).
    horizon_stages: int = 2
    #: Enforce the MaxLive-style per-cluster register bound.  Off turns
    #: the backend into a pure resource/dependence feasibility oracle.
    register_bound: bool = True

    def __post_init__(self) -> None:
        if self.engine not in ("auto", "native", "z3"):
            raise ConfigError(
                f"unknown smt engine {self.engine!r} "
                "(expected 'auto', 'native' or 'z3')"
            )
        if self.max_nodes < 1 or self.max_clusters < 1:
            raise ConfigError("smt size gates must be at least 1")
        if self.step_budget < 1:
            raise ConfigError("smt step budget must be at least 1")
        if self.horizon_stages < 0:
            raise ConfigError("smt horizon stages must be non-negative")

    def effective_engine(self) -> str:
        """Resolve ``"auto"`` against the environment (z3 if installed)."""
        if self.engine != "auto":
            return self.engine
        from repro.errors import optional_import

        return "z3" if optional_import("z3") is not None else "native"

    def canonical(self) -> dict:
        """Stable form for cache keys: ``engine`` resolved, rest verbatim."""
        payload = dataclasses.asdict(self)
        payload["engine"] = self.effective_engine()
        return payload


@dataclasses.dataclass(frozen=True)
class MirsParams:
    """Algorithm parameters (paper defaults).

    The paper does not publish its BudgetRatio; we default to 3, the
    value Rau's iterative modulo scheduling [28] uses, after verifying on
    the workbench that larger budgets (4, 6) produce identical schedules
    while taking 1.6x-2.7x longer.  The ablation benchmark sweeps it.
    """

    budget_ratio: int = 3
    spill_gauge: float = 2.0
    min_span_gauge: int = 4
    distance_gauge: int = 4
    #: Placements between register-pressure checks while the PriorityList
    #: is non-empty.  1 reproduces the paper exactly (a check after every
    #: node); the drained-list checks are always exact regardless.
    spill_check_interval: int = 1
    #: Hard cap on the II explored before declaring non-convergence; when
    #: ``None`` a cap is derived from the loop (see :func:`max_ii_for`).
    max_ii: int | None = None
    #: Safety valve on consecutive ejections while forcing a single node.
    max_force_evictions: int = 64
    #: Moves examined per register-pressure balancing attempt (Sec 3.3.3).
    balance_candidates: int = 4
    #: Single-victim ejection (the paper's policy) vs ejecting every
    #: conflicting node (the policy of [6, 16, 28]); the ablation bench
    #: flips this.
    eject_all: bool = False
    #: II-search policy: a registered name (``"linear"``,
    #: ``"geometric"``, ``"bisection"``) or an
    #: :class:`~repro.core.search.IISearchPolicy` instance.  Part of the
    #: scheduling problem's identity: it participates in
    #: :meth:`canonical` and therefore in the ``exec`` cache keys.
    ii_search: object = "linear"
    #: Cap on drained-regime spill/allocate rounds per attempt; ``None``
    #: derives ``3 * clusters + 8 + nodes // 8`` (see
    #: :meth:`final_round_cap_for`) so very large loops get
    #: proportionally more rounds before the attempt is abandoned.
    final_round_cap: int | None = None
    #: Bound consecutive eject-only spill-check rounds by the round cap
    #: (ending the attempt with the ``ROUND_CAP`` outcome) instead of
    #: letting the eject-and-replace cycle drain the restart budget.
    #: ``None`` defers to the search policy (the paper-exact
    #: ``LinearSearch`` leaves it off; the jumping policies turn it on —
    #: see :mod:`repro.core.search`).
    bound_eject_churn: bool | None = None
    #: Speculative II-search width: how many candidate IIs the driver
    #: races concurrently (see :mod:`repro.core.attempts`).  ``1`` is
    #: the serial search; ``None`` defers to the ``REPRO_SPECULATION``
    #: environment variable and then to 1.  The committed schedule is
    #: fingerprint-identical for every K by construction — K only
    #: changes wall-clock time and the ``search_trace`` diagnostics.
    speculation: int | None = None
    #: Serve the drained-regime register allocation from the
    #: incremental :class:`~repro.schedule.colouring.IncrementalArcColouring`
    #: engine (register-count-identical to the batch ``_colour_arcs``
    #: path by construction - schedules are fingerprint-identical either
    #: way).  Off runs the historical per-call batch allocation; kept as
    #: the oracle for the differential tests and benchmarks.
    incremental_colouring: bool = True
    #: Exact-backend parameters (``scheduler="smt"``); ``None`` means
    #: :class:`SmtParams` defaults.  Ignored by the heuristic schedulers
    #: and stripped from per-attempt cache keys, but part of
    #: :meth:`canonical` so exec cache keys distinguish oracle
    #: configurations.
    smt: SmtParams | None = None

    def __post_init__(self) -> None:
        if self.budget_ratio < 1:
            raise ConfigError("budget ratio must be at least 1")
        if self.spill_gauge < 1.0:
            raise ConfigError("spill gauge must be >= 1 (Section 3.2.3)")
        if self.min_span_gauge < 0 or self.distance_gauge < 0:
            raise ConfigError("gauges must be non-negative")
        if self.final_round_cap is not None and self.final_round_cap < 1:
            raise ConfigError("final round cap must be at least 1")
        if self.speculation is not None and self.speculation < 1:
            raise ConfigError("speculation width must be at least 1")
        if self.smt is not None and not isinstance(self.smt, SmtParams):
            raise ConfigError(
                f"smt must be an SmtParams (got {type(self.smt).__name__})"
            )
        make_policy(self.ii_search)  # fail fast on unknown policies

    def make_search_policy(self):
        """A policy instance for one search (see :mod:`repro.core.search`)."""
        return make_policy(self.ii_search)

    def effective_bound_eject_churn(self) -> bool:
        """Resolve the churn bound against the search policy's default."""
        if self.bound_eject_churn is not None:
            return self.bound_eject_churn
        return bool(
            getattr(make_policy(self.ii_search), "bound_eject_churn", False)
        )

    def effective_speculation(self) -> int:
        """Resolve the speculative search width (field, env, then 1).

        A malformed ``REPRO_SPECULATION`` warns and falls back to the
        serial search rather than killing a run.
        """
        if self.speculation is not None:
            return self.speculation
        value = os.environ.get(SPECULATION_ENV)
        if not value:
            return 1
        try:
            return max(1, int(value))
        except ValueError:
            warnings.warn(
                f"ignoring malformed {SPECULATION_ENV}={value!r}; "
                "searching serially (speculation=1)",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1

    def final_round_cap_for(self, clusters: int, node_count: int) -> int:
        """Drained-regime round cap for one attempt.

        The historical constant ``3 * clusters + 8`` starved very large
        loops: each round spills or ejects a single section, so a
        300-node loop whose MaxLive sits far above AR runs out of
        rounds while still making progress (ROADMAP's stress2
        non-convergence).  The derived cap grows with the loop size;
        setting :attr:`final_round_cap` pins it explicitly.
        """
        if self.final_round_cap is not None:
            return self.final_round_cap
        return 3 * clusters + 8 + node_count // 8

    def canonical(self) -> dict:
        """A stable, JSON-serializable form (cache keys, reports).

        Every field is a plain scalar except the search policy, which
        contributes its own :meth:`~repro.core.search.IISearchPolicy.canonical`
        form; new non-scalar fields must make an explicit encoding
        decision here rather than silently breaking cache keys.
        """
        payload = dataclasses.asdict(self)
        payload["ii_search"] = canonical_search(self.ii_search)
        # The resolved value is the semantic one: leaving the tri-state
        # None in the key would alias "policy default" with whichever
        # explicit setting happens to match it.
        payload["bound_eject_churn"] = self.effective_bound_eject_churn()
        payload["speculation"] = self.effective_speculation()
        # The exact backend's sub-params resolve their own tri-state
        # (engine "auto" → the engine that will actually run).
        payload["smt"] = self.effective_smt().canonical()
        return payload

    def effective_smt(self) -> SmtParams:
        """The exact-backend parameter set (field, or defaults)."""
        return self.smt if self.smt is not None else SmtParams()


def max_ii_for(mii: int, node_count: int, params: MirsParams) -> int:
    """The largest II a scheduler will try before giving up.

    Generous enough that any structurally schedulable loop converges,
    small enough that the baseline's genuine non-convergence (register
    pressure that no II can fix) is detected quickly.
    """
    if params.max_ii is not None:
        return params.max_ii
    return max(4 * mii + 32, mii + node_count, 64)
