"""Static certification of emitted VLIW software pipelines.

:func:`certify_code` proves bundle-level legality of
:func:`repro.codegen.generate_code` output *without executing it*: an
O(code-size) dataflow analysis over the bundle CFG replaces the
O(II x iterations) :mod:`repro.sim` differential for the properties
that do not depend on concrete values.

What is checked
---------------

* **Register dataflow** (reaching definitions + liveness, across the
  modulo-expansion copy renaming): a symbolic register file maps every
  architectural name to the ``(operation, iteration)`` instance that
  last defined it - or to the loop-entry live-in it still holds.  Each
  instruction's reads must observe exactly the instances its
  dependence-graph operands require (``iteration - distance``), with
  pre-loop instances resolving to live-ins.  A read observing a stale
  live-in is the MVE copy-label bug; a read observing the wrong
  instance is a renaming collision; a read of an unknown name is the
  simulator's ``SimulationError``, proven statically.
* **Bundle semantics**: sources are read before any write of the same
  bundle lands (the walk evaluates whole bundles read-first), and two
  writes to one register in one cycle are a collision.
* **Latencies**: every matched producer->consumer pair must be spaced
  at least the producer's latency apart in *concrete* cycles - the
  kernel back-edge included, because the walk runs the kernel body
  repeatedly until the register state reaches its fixpoint.
* **Resources**: per-cycle usage, re-derived from the code alone via
  the machine's reservation tables (unpipelined occupancy and the
  move's two-cluster + bus reservation included), must fit the
  :class:`~repro.machine.config.MachineConfig`.  On the linearized
  pipeline every reservation is a contiguous cycle interval, so the
  max-overlap count is an *exact* feasibility test (interval graphs
  are perfect) - no backtracking search as in
  :mod:`repro.core.verify`.
* **Cluster locality**: non-move instructions read and write only
  their own cluster's register file; moves read exactly from their
  declared source cluster.
* **Replication**: an operation of stage ``s`` appears ``SC - 1 - s``
  times in the prologue, once per kernel copy, and ``s`` times in the
  epilogue.

The kernel back-edge fixpoint terminates because every destination
register is rewritten each pass, so the shift-normalized state is
eventually periodic; violations found on the explored passes cover all
trip counts by translation invariance, and the epilogue is re-checked
after every explored pass (a pipeline may drain after any number of
passes >= 1).
"""

from __future__ import annotations

import dataclasses

from repro.analysis.cfg import (
    EPILOGUE,
    KERNEL,
    PROLOGUE,
    BundleCFG,
    BundleSite,
    register_cluster,
    split_sources,
)
from repro.analysis.model import (
    CertifierReport,
    CertifierViolation,
    ViolationKind,
)
from repro.codegen.emitter import GeneratedCode, Instruction
from repro.core.result import ScheduleResult
from repro.errors import GraphError
from repro.graph.ddg import DependenceGraph, DepKind, Edge, Node
from repro.graph.latency import edge_latency
from repro.machine.config import MachineConfig
from repro.machine.reservation import ClusterRole, ReservationStep, reservation_steps
from repro.machine.resources import OpKind, ResourceClass

#: Hard cap on kernel passes explored before the certifier gives up on
#: the dataflow fixpoint and reports a STRUCTURE violation (legal code
#: converges within a couple of passes; the cap only guards degenerate
#: sabotage).
MAX_FIXPOINT_SLACK = 8


@dataclasses.dataclass(frozen=True)
class _RegContent:
    """What a register holds: a pipeline definition or a live-in.

    ``write_cycle`` is the concrete cycle the defining instruction
    issued at (-1 for live-ins, which are ready at loop entry).
    """

    node: int
    iteration: int
    live_in: bool
    write_cycle: int

    def describe(self) -> str:
        if self.live_in:
            return f"live-in of value {self.node} (iteration {self.iteration})"
        return f"value {self.node} of iteration {self.iteration}"


@dataclasses.dataclass(frozen=True)
class _Expected:
    """The instance one dependence-graph operand requires."""

    edge: Edge
    node: int
    iteration: int
    live_in: bool

    def describe(self) -> str:
        if self.live_in:
            return f"live-in of value {self.node} (iteration {self.iteration})"
        return f"value {self.node} of iteration {self.iteration}"


class _Certifier:
    """One certification run (see module docstring)."""

    def __init__(self, code: GeneratedCode, schedule: ScheduleResult):
        graph = schedule.graph
        if graph is None:
            raise GraphError(
                f"certifying loop {schedule.loop!r} needs the schedule's "
                "dependence graph"
            )
        self.code = code
        self.schedule = schedule
        self.graph: DependenceGraph = graph
        self.machine: MachineConfig = schedule.machine
        self.cfg = BundleCFG(code)
        self.violations: list[CertifierViolation] = []
        self._seen: set[
            tuple[ViolationKind, str, int, str | None, int | None, str]
        ] = set()
        self.bundles_checked = 0
        self.reads_checked = 0
        self.passes_checked = 0
        times = schedule.times
        low = min(times.values(), default=0)
        self.stage_of: dict[int, int] = {
            node_id: (cycle - low) // code.ii for node_id, cycle in times.items()
        }
        #: (node, iteration) -> issue cycle, over the committed walk
        #: (prologue + kernel passes); epilogue replays overlay it.
        self.issue_cycle: dict[tuple[int, int], int] = {}
        self._nodes: dict[int, Node] = {node.id: node for node in graph.nodes()}
        self._reg_in: dict[int, list[Edge]] = {
            node_id: graph.reg_producers(node_id) for node_id in self._nodes
        }
        self._other_in: dict[int, list[Edge]] = {
            node_id: [
                edge
                for edge in graph.in_edges(node_id)
                if edge.kind is not DepKind.REG
            ]
            for node_id in self._nodes
        }
        self._has_reg_consumers: dict[int, bool] = {
            node_id: bool(graph.reg_consumers(node_id)) for node_id in self._nodes
        }
        self._invariant_names: dict[int, list[str]] = {
            node_id: sorted(inv.name for inv in graph.invariants_of(node_id))
            for node_id in self._nodes
        }
        #: Live-in modulus per value: a value held in ``m`` distinct
        #: physical registers presents at most ``m`` distinct live-ins,
        #: so pre-loop instances congruent modulo ``m`` are physically
        #: one value (mirrors ``live_in_moduli_of_code`` - the semantic
        #: contract the differential's reference interpreter uses too).
        self._live_in_modulus: dict[int, int] = {
            value: len(set(names)) for value, names in code.registers.items()
        }
        #: Edge latencies, resolved once: the dataflow walk re-checks
        #: the same static edge on every kernel pass and epilogue
        #: replay, and ``edge_latency`` re-derives the operation class
        #: each time.
        self._latency: dict[int, int] = {
            id(edge): edge_latency(graph, edge, self.machine)
            for edges in (self._reg_in, self._other_in)
            for edge_list in edges.values()
            for edge in edge_list
        }

    # ------------------------------------------------------------------
    # Violation recording
    # ------------------------------------------------------------------

    def _report(
        self,
        kind: ViolationKind,
        site: BundleSite | None,
        register: str | None = None,
        operation: int | None = None,
        detail: str = "",
    ) -> None:
        """Record one violation, deduplicating shift-equivalent repeats.

        The kernel fixpoint and the per-pass epilogue replays revisit
        the same static bundle; a defect there would otherwise be
        reported once per visited pass.
        """
        section = site.section if site is not None else "code"
        index = site.index if site is not None else -1
        # Keyed without `detail` at concrete sites (details embed
        # pass-dependent iteration numbers); whole-pipeline reports have
        # pass-independent details and would collide without it.
        key = (kind, section, index, register, operation,
               detail if site is None else "")
        if key in self._seen:
            return
        self._seen.add(key)
        self.violations.append(
            CertifierViolation(
                kind=kind,
                section=section,
                bundle=index,
                register=register,
                operation=operation,
                detail=detail,
            )
        )

    # ------------------------------------------------------------------
    # Structural checks
    # ------------------------------------------------------------------

    def check_structure(self) -> bool:
        """Section lengths; False when the pipeline shape is unusable."""
        code = self.code
        fill = code.ii * (code.stage_count - 1)
        ok = True
        if len(code.prologue) != fill:
            self._report(
                ViolationKind.STRUCTURE,
                None,
                detail=(
                    f"prologue has {len(code.prologue)} bundles, expected "
                    f"II*(SC-1) = {fill}"
                ),
            )
            ok = False
        if len(code.epilogue) != fill:
            self._report(
                ViolationKind.STRUCTURE,
                None,
                detail=(
                    f"epilogue has {len(code.epilogue)} bundles, expected "
                    f"II*(SC-1) = {fill}"
                ),
            )
            ok = False
        kernel_cycles = code.ii * code.mve_factor
        if len(code.kernel) != kernel_cycles:
            self._report(
                ViolationKind.STRUCTURE,
                None,
                detail=(
                    f"kernel has {len(code.kernel)} bundles, expected "
                    f"II*MVE = {kernel_cycles}"
                ),
            )
            ok = False
        return ok

    def check_replication(self) -> None:
        """The SC-1-s / MVE / s instance-count invariant, per node."""
        counts: dict[str, dict[int, int]] = {PROLOGUE: {}, KERNEL: {}, EPILOGUE: {}}
        for section, bundles in (
            (PROLOGUE, self.code.prologue),
            (KERNEL, self.code.kernel),
            (EPILOGUE, self.code.epilogue),
        ):
            tally = counts[section]
            for bundle in bundles:
                for inst in bundle:
                    tally[inst.node] = tally.get(inst.node, 0) + 1
        sc = self.code.stage_count
        mve = self.code.mve_factor
        for node_id in sorted(self._nodes):
            stage = self.stage_of.get(node_id)
            if stage is None:
                self._report(
                    ViolationKind.STRUCTURE,
                    None,
                    operation=node_id,
                    detail=f"node {node_id} has no scheduled cycle",
                )
                continue
            expected = {
                PROLOGUE: sc - 1 - stage,
                KERNEL: mve,
                EPILOGUE: stage,
            }
            for section, want in expected.items():
                have = counts[section].get(node_id, 0)
                if have != want:
                    self._report(
                        ViolationKind.REPLICATION,
                        None,
                        operation=node_id,
                        detail=(
                            f"stage-{stage} node {node_id} appears {have} "
                            f"times in the {section}, expected {want}"
                        ),
                    )
        for section, tally in counts.items():
            for node_id in sorted(tally):
                if node_id not in self._nodes:
                    self._report(
                        ViolationKind.STRUCTURE,
                        None,
                        operation=node_id,
                        detail=(
                            f"{section} issues node {node_id} which is not "
                            "in the dependence graph"
                        ),
                    )

    # ------------------------------------------------------------------
    # Resource usage (re-derived from the code alone)
    # ------------------------------------------------------------------

    def check_resources(self) -> None:
        """Exact per-cycle resource feasibility on the linearized code.

        Enough kernel passes are materialized that any occupancy tail
        (an unpipelined divide spans up to 30 cycles) wraps through the
        back-edge into the next pass; prologue and epilogue bundles are
        instruction subsets of their kernel rows, so the multi-pass
        interior dominates every smaller trip count.
        """
        kernel_cycles = max(1, self.cfg.kernel_cycles)
        max_occ = 1
        kinds = {inst.kind for inst in self._steps_iter()}
        for kind in kinds:
            if kind.is_compute:
                max_occ = max(max_occ, self.machine.occupancy(kind))
        passes = max(2, -(-max_occ // kernel_cycles) + 1)

        steps_of: dict[OpKind, tuple[ReservationStep, ...]] = {}
        usage: dict[tuple[ResourceClass, int], dict[int, list[int]]] = {}
        site_at: dict[int, BundleSite] = {}
        for site in self.cfg.linearized(passes):
            site_at[site.cycle] = site
            for inst in site.bundle:
                node = self._nodes.get(inst.node)
                if node is None:
                    continue
                steps = steps_of.get(node.kind)
                if steps is None:
                    steps = reservation_steps(node.kind, self.machine)
                    steps_of[node.kind] = steps
                for step in steps:
                    if step.role is ClusterRole.SELF:
                        target = inst.cluster
                    elif step.role is ClusterRole.SOURCE:
                        if node.src_cluster is None:
                            continue  # reported by the dataflow walk
                        target = node.src_cluster
                    else:
                        if self.machine.buses is None:
                            continue  # unbounded interconnect
                        target = -1
                    pool = usage.setdefault((step.resource, target), {})
                    for offset in range(step.duration):
                        cycle = site.cycle + step.offset + offset
                        pool.setdefault(cycle, []).append(inst.node)

        for (resource, target), pool in sorted(
            usage.items(), key=lambda kv: (kv[0][0].value, kv[0][1])
        ):
            capacity = self.machine.instances(resource)
            if capacity is None:
                continue
            for cycle in sorted(pool):
                users = pool[cycle]
                if len(users) <= capacity:
                    continue
                where = "interconnect" if target == -1 else f"cluster {target}"
                site = site_at.get(cycle)
                self._report(
                    ViolationKind.RESOURCE,
                    site,
                    operation=sorted(users)[0],
                    detail=(
                        f"{len(users)} operations {sorted(set(users))} need "
                        f"{resource.name} of {where} in one cycle but only "
                        f"{capacity} instances exist"
                    ),
                )
                break  # first overflow per pool is the diagnostic one

    def _steps_iter(self) -> list[Node]:
        return [
            self._nodes[inst.node]
            for inst in self.code.all_instructions()
            if inst.node in self._nodes
        ]

    # ------------------------------------------------------------------
    # Register dataflow
    # ------------------------------------------------------------------

    def _initial_state(self) -> dict[str, _RegContent]:
        """Loop-entry register contents (mirrors the simulator).

        Copy ``c`` of a value's register set is owned by pre-loop
        iteration ``c - MVE``; aliased copies of non-expanded values
        overwrite each other in ascending copy order, leaving iteration
        -1 - exactly :meth:`VliwSimulator._initial_registers`, with
        symbolic live-ins in place of concrete values.
        """
        mve = self.code.mve_factor
        state: dict[str, _RegContent] = {}
        for value, names in sorted(self.code.registers.items()):
            for copy, name in enumerate(names):
                state[name] = _RegContent(
                    node=value,
                    iteration=copy - mve,
                    live_in=True,
                    write_cycle=-1,
                )
        return state

    def _expected_operands(self, node_id: int, iteration: int) -> list[_Expected]:
        expected = []
        for edge in self._reg_in[node_id]:
            produced = iteration - edge.distance
            if produced < 0:
                # Collapse pre-loop instances onto the value's physical
                # live-in registers (see ``_live_in_modulus``).
                modulus = self._live_in_modulus.get(edge.src, 1)
                produced = produced % modulus - modulus
            expected.append(
                _Expected(
                    edge=edge,
                    node=edge.src,
                    iteration=produced,
                    live_in=produced < 0,
                )
            )
        return expected

    def _check_instruction(
        self,
        site: BundleSite,
        inst: Instruction,
        state: dict[str, _RegContent],
        issued: dict[tuple[int, int], int],
        writes: list[tuple[str, _RegContent, int]],
    ) -> None:
        node = self._nodes.get(inst.node)
        if node is None:
            return  # reported by check_replication
        stage = self.stage_of.get(inst.node)
        if stage is None:
            return  # reported by check_replication
        iteration = site.block - stage
        cluster = self.schedule.clusters.get(inst.node, inst.cluster)

        reg_names, inv_names = split_sources(inst.sources)

        # Cluster locality: moves read from their declared source
        # cluster, everything else from its own register file.
        source_cluster = node.src_cluster if node.is_move else cluster
        if node.is_move and node.src_cluster is None:
            self._report(
                ViolationKind.STRUCTURE,
                site,
                operation=inst.node,
                detail=f"move {inst.node} declares no source cluster",
            )
        for name in reg_names:
            owner = register_cluster(name)
            if owner is None:
                self._report(
                    ViolationKind.OPERAND_MISMATCH,
                    site,
                    register=name,
                    operation=inst.node,
                    detail=f"malformed register name {name!r}",
                )
            elif source_cluster is not None and owner != source_cluster:
                self._report(
                    ViolationKind.CROSS_CLUSTER,
                    site,
                    register=name,
                    operation=inst.node,
                    detail=(
                        f"node {inst.node} on cluster {cluster} reads "
                        f"{name} from cluster {owner} without a move"
                        if not node.is_move
                        else f"move {inst.node} reads {name} from cluster "
                        f"{owner} but declares source {node.src_cluster}"
                    ),
                )

        # Invariant operands must be exactly the graph's.
        expected_invariants = self._invariant_names[inst.node]
        if sorted(inv_names) != expected_invariants:
            self._report(
                ViolationKind.OPERAND_MISMATCH,
                site,
                operation=inst.node,
                detail=(
                    f"invariant operands {sorted(inv_names)} != "
                    f"{expected_invariants} required by the graph"
                ),
            )

        # Resolve every register read (before any write of this bundle).
        contents: list[tuple[str, _RegContent | None]] = []
        for name in reg_names:
            self.reads_checked += 1
            content = state.get(name)
            if content is None:
                self._report(
                    ViolationKind.UNDEFINED_READ,
                    site,
                    register=name,
                    operation=inst.node,
                    detail=(
                        f"node {inst.node} reads {name} which no definition "
                        "or live-in ever reaches"
                    ),
                )
            contents.append((name, content))

        # Match reads against the graph's operands: exact instance
        # matches first, then classify the leftovers.
        expected = self._expected_operands(inst.node, iteration)
        if len(reg_names) != len(expected):
            self._report(
                ViolationKind.OPERAND_MISMATCH,
                site,
                operation=inst.node,
                detail=(
                    f"{len(reg_names)} register operands for "
                    f"{len(expected)} register dependences"
                ),
            )
        unmatched_reads = list(contents)
        for want in sorted(
            expected, key=lambda w: (w.node, w.iteration)
        ):
            hit = None
            for index, (name, content) in enumerate(unmatched_reads):
                if (
                    content is not None
                    and content.live_in == want.live_in
                    and content.node == want.node
                    and content.iteration == want.iteration
                ):
                    hit = index
                    break
            if hit is not None:
                name, content = unmatched_reads.pop(hit)
                assert content is not None
                if not content.live_in:
                    latency = self._latency[id(want.edge)]
                    if site.cycle < content.write_cycle + latency:
                        self._report(
                            ViolationKind.LATENCY,
                            site,
                            register=name,
                            operation=inst.node,
                            detail=(
                                f"node {inst.node} reads {want.describe()} "
                                f"{site.cycle - content.write_cycle} cycles "
                                f"after its definition; latency is {latency}"
                            ),
                        )
                continue
            # No read observes the required instance: classify against
            # the (deterministically chosen) first unmatched read.
            offender = next(
                ((n, c) for n, c in unmatched_reads if c is not None), None
            )
            if offender is None:
                continue  # reads were undefined - already reported
            name, content = offender
            unmatched_reads.remove(offender)
            assert content is not None
            if content.live_in and not want.live_in:
                kind = ViolationKind.STALE_LIVE_IN
            else:
                kind = ViolationKind.WRONG_PRODUCER
            self._report(
                kind,
                site,
                register=name,
                operation=inst.node,
                detail=(
                    f"node {inst.node} needs {want.describe()} but {name} "
                    f"holds {content.describe()}"
                ),
            )

        # Destination bookkeeping.
        if inst.dest is not None:
            if not node.produces_value:
                self._report(
                    ViolationKind.OPERAND_MISMATCH,
                    site,
                    register=inst.dest,
                    operation=inst.node,
                    detail=f"{node.kind.value} node {inst.node} writes a register",
                )
            owner = register_cluster(inst.dest)
            if owner is not None and owner != cluster:
                self._report(
                    ViolationKind.CROSS_CLUSTER,
                    site,
                    register=inst.dest,
                    operation=inst.node,
                    detail=(
                        f"node {inst.node} on cluster {cluster} writes "
                        f"{inst.dest} of cluster {owner}"
                    ),
                )
            writes.append(
                (
                    inst.dest,
                    _RegContent(
                        node=inst.node,
                        iteration=iteration,
                        live_in=False,
                        write_cycle=site.cycle,
                    ),
                    inst.node,
                )
            )
        elif self._has_reg_consumers[inst.node]:
            self._report(
                ViolationKind.OPERAND_MISMATCH,
                site,
                operation=inst.node,
                detail=(
                    f"node {inst.node} has register consumers but the "
                    "instruction writes no destination"
                ),
            )

        # Memory / control ordering across the concrete walk.
        for edge in self._other_in[inst.node]:
            produced = iteration - edge.distance
            if produced < 0:
                continue
            producer_cycle = issued.get((edge.src, produced))
            if producer_cycle is None:
                producer_cycle = self.issue_cycle.get((edge.src, produced))
            if producer_cycle is None:
                continue
            latency = self._latency[id(edge)]
            if site.cycle < producer_cycle + latency:
                self._report(
                    ViolationKind.LATENCY,
                    site,
                    operation=inst.node,
                    detail=(
                        f"{edge.kind.value} dependence {edge.src}->"
                        f"{inst.node} (d={edge.distance}) violated: issued "
                        f"{site.cycle - producer_cycle} cycles apart, "
                        f"latency {latency}"
                    ),
                )
        issued[(inst.node, iteration)] = site.cycle

    def _walk_site(
        self,
        site: BundleSite,
        state: dict[str, _RegContent],
        issued: dict[tuple[int, int], int],
    ) -> None:
        """Execute one bundle symbolically: read-first, then write back."""
        self.bundles_checked += 1
        writes: list[tuple[str, _RegContent, int]] = []
        for inst in site.bundle:
            self._check_instruction(site, inst, state, issued, writes)
        written: dict[str, int] = {}
        for name, content, node_id in writes:
            earlier = written.get(name)
            if earlier is not None:
                self._report(
                    ViolationKind.WRITE_WRITE,
                    site,
                    register=name,
                    operation=node_id,
                    detail=(
                        f"nodes {earlier} and {node_id} both write {name} "
                        f"in one bundle"
                    ),
                )
            written[name] = node_id
            state[name] = content

    def _normalized(
        self, state: dict[str, _RegContent], passes: int
    ) -> frozenset[tuple[str, bool, int, int]]:
        """State modulo the per-pass iteration shift (fixpoint test)."""
        shift = passes * self.code.mve_factor
        return frozenset(
            (
                name,
                content.live_in,
                content.node,
                content.iteration - (0 if content.live_in else shift),
            )
            for name, content in state.items()
        )

    def check_dataflow(self) -> None:
        state = self._initial_state()
        issued = self.issue_cycle
        for site in self.cfg.prologue_sites():
            self._walk_site(site, state, issued)

        explored: set[frozenset[tuple[str, bool, int, int]]] = set()
        max_passes = (
            self.code.stage_count + self.code.mve_factor + MAX_FIXPOINT_SLACK
        )
        passes = 0
        while True:
            norm = self._normalized(state, passes)
            if norm in explored:
                break
            explored.add(norm)
            if passes >= 1:
                # The pipeline may drain after *any* number of passes:
                # replay the epilogue from the state entering this pass
                # boundary, without committing its effects.
                replay_state = dict(state)
                replay_issued: dict[tuple[int, int], int] = {}
                for site in self.cfg.epilogue_sites(passes):
                    self._walk_site(site, replay_state, replay_issued)
            if passes >= max_passes:
                self._report(
                    ViolationKind.STRUCTURE,
                    None,
                    detail=(
                        f"register dataflow did not reach a fixpoint "
                        f"within {max_passes} kernel passes"
                    ),
                )
                break
            for site in self.cfg.kernel_sites(passes):
                self._walk_site(site, state, issued)
            passes += 1
        self.passes_checked = passes

    # ------------------------------------------------------------------

    def run(self) -> CertifierReport:
        if self.check_structure():
            self.check_replication()
            self.check_resources()
            self.check_dataflow()
        return CertifierReport(
            loop=self.code.loop,
            machine=self.machine.name,
            ii=self.code.ii,
            stage_count=self.code.stage_count,
            mve_factor=self.code.mve_factor,
            passes_checked=self.passes_checked,
            bundles_checked=self.bundles_checked,
            reads_checked=self.reads_checked,
            violations=tuple(self.violations),
        )


def certify_code(
    code: GeneratedCode,
    schedule: ScheduleResult,
    *,
    trace: object = None,
) -> CertifierReport:
    """Statically certify emitted code against its schedule and machine.

    Args:
        code: the :func:`repro.codegen.generate_code` output to certify.
        schedule: the converged :class:`ScheduleResult` the code was
            emitted from (supplies the dependence graph, the machine
            configuration and the per-node cycles/clusters).
        trace: optional tracer selector (as accepted by
            :func:`repro.obs.resolve_tracer`); when tracing is on the
            run records a ``certify`` span and one ``certify.violation``
            instant per violation.

    Returns:
        A :class:`CertifierReport`; ``report.ok`` means every check
        passed and the code is legal for every trip count.
    """
    from repro.obs import resolve_tracer

    tracer = resolve_tracer(trace)
    token = None
    if tracer.enabled:
        token = tracer.begin("certify", "analysis", loop=code.loop)
    report = _Certifier(code, schedule).run()
    if tracer.enabled:
        for violation in report.violations:
            tracer.instant("certify.violation", "analysis", **violation.as_dict())
        tracer.end(
            token,
            ok=report.ok,
            violations=len(report.violations),
            reads=report.reads_checked,
            bundles=report.bundles_checked,
        )
    return report


def certify_schedule(
    schedule: ScheduleResult, *, trace: object = None
) -> CertifierReport:
    """Emit code for a converged schedule and certify it.

    Raises:
        CodegenError: when the schedule did not converge or is
            register-infeasible (no code exists to certify).
    """
    from repro.codegen.emitter import generate_code

    return certify_code(generate_code(schedule), schedule, trace=trace)
