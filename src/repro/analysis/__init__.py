"""repro.analysis — static certification of emitted VLIW pipelines.

The certifier proves bundle-level legality of
:func:`repro.codegen.generate_code` output *without executing it* — an
O(code-size) dataflow analysis replacing the O(II x iterations)
:mod:`repro.sim` differential for value-independent properties.  See
:mod:`repro.analysis.certifier` for the property list and the fixpoint
argument.

Entry points:

* :func:`certify_code` — certify emitted code against its schedule;
* :func:`certify_schedule` — emit and certify in one call;
* ``repro analyze`` — the CLI front-end (nonzero exit on violations);
* ``REPRO_STATIC_CERTIFY=1`` — the sanitizer hook: every
  :func:`~repro.codegen.generate_code` call certifies its own output
  and raises :class:`repro.errors.CertificationError` on violations.
"""

from __future__ import annotations

from repro.analysis.certifier import certify_code, certify_schedule
from repro.analysis.cfg import BundleCFG, BundleSite
from repro.analysis.model import (
    CertifierReport,
    CertifierViolation,
    ViolationKind,
)

__all__ = [
    "BundleCFG",
    "BundleSite",
    "CertifierReport",
    "CertifierViolation",
    "ViolationKind",
    "certify_code",
    "certify_schedule",
]
