"""Bundle-level control flow over emitted software pipelines.

The code :func:`repro.codegen.generate_code` emits has exactly one
control-flow shape: a straight-line **prologue**, a **kernel** of
``II x MVE`` bundles with a back-edge from its last bundle to its first
(taken ``passes - 1`` times for ``passes >= 1``), and a straight-line
**epilogue**.  :class:`BundleCFG` materializes that shape and yields
*concrete* bundle sites - ``(section, index, cycle, block)`` tuples -
for any number of kernel passes, mirroring the cycle accounting of
:meth:`repro.sim.vliw.VliwSimulator._bundles`: the ``block`` (global
cycle block, ``cycle // II``) is what turns an instruction's stage into
the loop iteration it executes on behalf of (``iteration = block -
stage``).

The dataflow pass of :mod:`repro.analysis.certifier` walks these sites
with a symbolic register file; running the kernel body repeatedly until
the (shift-normalized) register state repeats is exactly the classic
reaching-definitions fixpoint over the back-edge, specialised to this
three-section CFG.
"""

from __future__ import annotations

import dataclasses
import functools
from collections.abc import Iterator

from repro.codegen.emitter import GeneratedCode, Instruction

#: Sections of the emitted pipeline, in execution order.
PROLOGUE = "prologue"
KERNEL = "kernel"
EPILOGUE = "epilogue"


@dataclasses.dataclass(frozen=True)
class BundleSite:
    """One concrete bundle execution.

    Attributes:
        section: ``prologue`` / ``kernel`` / ``epilogue``.
        index: bundle index within its section (stable across passes).
        cycle: concrete cycle of this execution (stall-free schedule).
        block: global cycle block (``cycle // II``); an instruction of
            stage *s* issuing here executes iteration ``block - s``.
        bundle: the instructions issuing in this cycle.
    """

    section: str
    index: int
    cycle: int
    block: int
    bundle: list[Instruction]


class BundleCFG:
    """The prologue -> kernel (back-edge) -> epilogue bundle graph."""

    def __init__(self, code: GeneratedCode):
        self.code = code
        self.ii = code.ii
        #: Cycle blocks filled by the prologue (SC - 1).
        self.fill_blocks = code.stage_count - 1
        #: Cycles of one whole kernel pass (II x MVE).
        self.kernel_cycles = code.ii * code.mve_factor

    def prologue_sites(self) -> Iterator[BundleSite]:
        for index, bundle in enumerate(self.code.prologue):
            yield BundleSite(
                section=PROLOGUE,
                index=index,
                cycle=index,
                block=index // self.ii,
                bundle=bundle,
            )

    def kernel_sites(self, kernel_pass: int) -> Iterator[BundleSite]:
        """The kernel body's sites on its ``kernel_pass``-th execution."""
        base_cycle = len(self.code.prologue) + kernel_pass * self.kernel_cycles
        base_block = self.fill_blocks + kernel_pass * self.code.mve_factor
        for index, bundle in enumerate(self.code.kernel):
            yield BundleSite(
                section=KERNEL,
                index=index,
                cycle=base_cycle + index,
                block=base_block + index // self.ii,
                bundle=bundle,
            )

    def epilogue_sites(self, passes: int) -> Iterator[BundleSite]:
        """The epilogue's sites after ``passes`` kernel executions."""
        base_cycle = len(self.code.prologue) + passes * self.kernel_cycles
        base_block = self.fill_blocks + passes * self.code.mve_factor
        for index, bundle in enumerate(self.code.epilogue):
            yield BundleSite(
                section=EPILOGUE,
                index=index,
                cycle=base_cycle + index,
                block=base_block + index // self.ii,
                bundle=bundle,
            )

    def linearized(self, passes: int) -> Iterator[BundleSite]:
        """A complete execution with ``passes`` kernel passes."""
        yield from self.prologue_sites()
        for kernel_pass in range(passes):
            yield from self.kernel_sites(kernel_pass)
        yield from self.epilogue_sites(passes)


#: Prefix of loop-invariant operands in emitted source lists.
INVARIANT_PREFIX = "inv:"


@functools.lru_cache(maxsize=4096)
def register_cluster(name: str) -> int | None:
    """The owning cluster encoded in a register name (``c1:r7.k2`` -> 1).

    Returns ``None`` for names that do not follow the emitter's
    ``c<cluster>:...`` convention (including invariant operands).
    The cache pays off because the dataflow walk re-parses the same
    few hundred names on every kernel pass of every certified loop.
    """
    if name.startswith(INVARIANT_PREFIX):
        return None
    head, sep, _ = name.partition(":")
    if not sep or not head.startswith("c"):
        return None
    try:
        return int(head[1:])
    except ValueError:
        return None


def split_sources(
    sources: tuple[str, ...],
) -> tuple[list[str], list[str]]:
    """Partition an instruction's sources into (registers, invariants)."""
    registers: list[str] = []
    invariants: list[str] = []
    for name in sources:
        if name.startswith(INVARIANT_PREFIX):
            invariants.append(name[len(INVARIANT_PREFIX):])
        else:
            registers.append(name)
    return registers, invariants
