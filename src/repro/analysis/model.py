"""Structured certifier verdicts.

A :class:`CertifierViolation` is one provable defect of emitted code:
its :class:`ViolationKind` names the broken legality rule, and the
``(section, bundle, register, operation)`` coordinates pin the first
program point where the defect is observable.  Violations are plain
records with a stable dict form (:meth:`CertifierViolation.as_dict`),
so they export the same way :mod:`repro.obs` events do - JSON rows a
batch driver can aggregate without parsing prose.
"""

from __future__ import annotations

import dataclasses
import enum


class ViolationKind(enum.Enum):
    """The legality rule a violation breaks.

    The member value is the stable machine-readable name used in JSON
    exports and CLI output.
    """

    #: A register is read that neither a pipeline definition nor the
    #: loop-entry live-in state ever defines.
    UNDEFINED_READ = "undefined-read"
    #: A read observes the loop-entry live-in of a value where a
    #: definition from an earlier pipeline stage was required - the
    #: shape of the MVE copy-label bug: the kernel reads a renamed
    #: register the prologue never wrote.
    STALE_LIVE_IN = "stale-live-in"
    #: A read observes a definition, but of the wrong value or the
    #: wrong iteration instance - the shape of a register-renaming
    #: collision (two values sharing one architectural name).
    WRONG_PRODUCER = "wrong-producer"
    #: The instruction's source registers do not line up one-to-one
    #: with its dependence-graph operands (wrong operand count, a
    #: missing destination, an unknown invariant...).
    OPERAND_MISMATCH = "operand-mismatch"
    #: Two instructions of one bundle write the same register in the
    #: same cycle.
    WRITE_WRITE = "write-write-collision"
    #: A consumer issues before its producer's latency has elapsed
    #: (checked on concrete cycles, across the kernel back-edge too).
    LATENCY = "latency-violation"
    #: A cycle needs more instances of some resource class than the
    #: machine configuration provides.
    RESOURCE = "resource-overflow"
    #: A non-move instruction reads (or any instruction writes) a
    #: register outside its own cluster's register file.
    CROSS_CLUSTER = "cross-cluster-read"
    #: The fill/drain invariant is broken: a stage-``s`` operation must
    #: appear ``SC-1-s`` times in the prologue, once per kernel copy,
    #: and ``s`` times in the epilogue.
    REPLICATION = "stage-replication"
    #: The pipeline's shape itself is malformed (section lengths, a
    #: move without a source cluster, a non-converging dataflow...).
    STRUCTURE = "structure"


@dataclasses.dataclass(frozen=True)
class CertifierViolation:
    """One statically-proven defect in emitted VLIW code.

    Attributes:
        kind: the broken legality rule.
        section: pipeline section (``prologue``/``kernel``/``epilogue``,
            or ``code`` for whole-pipeline properties).
        bundle: bundle index within the section (-1 for whole-pipeline
            properties).
        register: the register name involved, if any.
        operation: the dependence-graph node id involved, if any.
        detail: human-readable specifics.
    """

    kind: ViolationKind
    section: str
    bundle: int
    register: str | None = None
    operation: int | None = None
    detail: str = ""

    def as_dict(self) -> dict[str, object]:
        """Stable JSON-serializable form (exported like obs events)."""
        return {
            "kind": self.kind.value,
            "section": self.section,
            "bundle": self.bundle,
            "register": self.register,
            "operation": self.operation,
            "detail": self.detail,
        }

    def render(self) -> str:
        where = (
            f"{self.section}[{self.bundle}]" if self.bundle >= 0 else self.section
        )
        bits = [f"{self.kind.value} @ {where}"]
        if self.operation is not None:
            bits.append(f"node {self.operation}")
        if self.register is not None:
            bits.append(f"register {self.register}")
        head = ", ".join(bits)
        return f"{head}: {self.detail}" if self.detail else head


@dataclasses.dataclass(frozen=True)
class CertifierReport:
    """The outcome of statically certifying one loop's emitted code.

    Attributes:
        loop: the loop's name.
        machine: the target configuration's name.
        ii / stage_count / mve_factor: pipeline geometry.
        passes_checked: kernel passes symbolically executed before the
            register dataflow reached its fixpoint.
        bundles_checked: concrete bundles walked (epilogue replays after
            every explored pass included).
        reads_checked: register reads matched against the dependence
            graph.
        violations: every proven defect, in discovery order.
    """

    loop: str
    machine: str
    ii: int
    stage_count: int
    mve_factor: int
    passes_checked: int
    bundles_checked: int
    reads_checked: int
    violations: tuple[CertifierViolation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def kinds(self) -> set[ViolationKind]:
        return {violation.kind for violation in self.violations}

    def kind_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for violation in self.violations:
            key = violation.kind.value
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def as_dict(self) -> dict[str, object]:
        return {
            "loop": self.loop,
            "machine": self.machine,
            "ii": self.ii,
            "stage_count": self.stage_count,
            "mve_factor": self.mve_factor,
            "passes_checked": self.passes_checked,
            "bundles_checked": self.bundles_checked,
            "reads_checked": self.reads_checked,
            "violations": [v.as_dict() for v in self.violations],
        }

    def summary(self) -> str:
        verdict = "CERTIFIED" if self.ok else "REJECTED"
        head = (
            f"{self.loop} on {self.machine}: {verdict} "
            f"(II={self.ii}, SC={self.stage_count}, MVE x{self.mve_factor}; "
            f"{self.reads_checked} reads over {self.bundles_checked} bundles, "
            f"{self.passes_checked} kernel passes to fixpoint)"
        )
        if self.ok:
            return head
        lines = [head]
        lines.extend("  " + violation.render() for violation in self.violations)
        return "\n".join(lines)
